"""Instruction tracing: see exactly what the SM issues, cycle by cycle.

Attach a :class:`TraceRecorder` to an SM before launching and it captures
every issue — cycle, warp, PC, disassembled instruction, active lanes.
Useful for debugging kernels, for teaching (watching reconvergence
happen), and for the trace-shape tests in the suite.
"""

from dataclasses import dataclass
from typing import List

from repro.isa.disasm import format_instr


@dataclass
class TraceEntry:
    cycle: int
    warp: int
    pc: int
    text: str
    op_name: str
    active_lanes: List[int]
    #: SM lane count; the mask renders at this width so entries line up
    #: and partially-active warps read at a glance.
    num_lanes: int = 0

    def __str__(self):
        width = self.num_lanes
        if not width:
            # Entries from before the lane count was known: size the mask
            # to the highest active lane (or nothing when none are).
            width = max(self.active_lanes) + 1 if self.active_lanes else 0
        active = set(self.active_lanes)
        lanes = "".join("x" if lane in active else "."
                        for lane in range(width))
        return "%8d  w%-2d %06x  [%s]  %s" % (
            self.cycle, self.warp, self.pc, lanes, self.text)


class TraceRecorder:
    """Collects per-issue trace entries (optionally bounded).

    ``num_lanes`` (when given) fixes the rendered width of the lane
    mask to the SM's actual warp size.
    """

    def __init__(self, limit=None, only_warp=None, num_lanes=0):
        self.entries = []
        self.limit = limit
        self.only_warp = only_warp
        self.num_lanes = num_lanes
        self.dropped = 0

    def record(self, cycle, warp, pc, instr, lanes):
        if self.only_warp is not None and warp != self.only_warp:
            return
        if self.limit is not None and len(self.entries) >= self.limit:
            self.dropped += 1
            return
        self.entries.append(TraceEntry(
            cycle=cycle, warp=warp, pc=pc, text=format_instr(instr),
            op_name=instr.op.name, active_lanes=list(lanes),
            num_lanes=self.num_lanes))

    def __len__(self):
        return len(self.entries)

    def __iter__(self):
        return iter(self.entries)

    def render(self, count=None):
        entries = self.entries if count is None else self.entries[:count]
        lines = ["   cycle  warp pc      lanes  instruction"]
        lines.extend(str(entry) for entry in entries)
        if self.dropped:
            lines.append("... %d further issues not recorded" % self.dropped)
        return "\n".join(lines)


def trace_kernel(runtime, kernel_src, grid_dim, block_dim, args,
                 limit=2000, only_warp=None):
    """Launch a kernel with tracing enabled; returns (stats, recorder)."""
    recorder = TraceRecorder(limit=limit, only_warp=only_warp,
                             num_lanes=runtime.sm.cfg.num_lanes)
    runtime.sm.trace = recorder
    try:
        stats = runtime.launch(kernel_src, grid_dim, block_dim, args)
    finally:
        runtime.sm.trace = None
    return stats, recorder
