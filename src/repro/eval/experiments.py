"""One driver per table/figure of the paper's evaluation (section 4).

Each function returns plain data (rows / series) so the benchmark harness
can print the same tables the paper reports, and EXPERIMENTS.md can record
paper-vs-measured.
"""

from repro.area.model import paper_geometry, table3_rows
from repro.benchsuite import BENCHMARK_NAMES
from repro.eval.runner import geomean, run_suite
from repro.simt.config import REGS_PER_THREAD, SMConfig


# ---------------------------------------------------------------------------
# Figure 6: CHERI instruction execution frequency
# ---------------------------------------------------------------------------

def fig6_cheri_instruction_frequency(scale=1):
    """Average execution frequency of each CHERI instruction across the
    suite, relative to total instructions executed."""
    totals = {}
    grand_total = 0
    for result in run_suite("cheri_opt", scale=scale).values():
        for op, count in result.stats.opcode_counts.items():
            totals[op] = totals.get(op, 0) + count
            grand_total += count
    from repro.isa.instructions import CHERI_OPS
    series = [
        (op.name, totals[op] / grand_total)
        for op in sorted(totals, key=lambda o: -totals[o])
        if op in CHERI_OPS
    ]
    return series


# ---------------------------------------------------------------------------
# Table 2: register-file compression vs VRF size (baseline, no CHERI)
# ---------------------------------------------------------------------------

def table2_rf_compression(fractions=(0.5, 0.375, 0.25, 0.125, 0.0625),
                          scale=1):
    """Storage, compression ratio, and cycle/memory overheads per VRF size.

    Overheads are relative to an uncompressed (full-size VRF) register
    file; storage is reported at the paper's 64x32 geometry.  The paper's
    rows are 1/2, 3/8, 1/4; two smaller sizes are swept as well because
    this reproduction's compiler keeps fewer live uncompressible vectors
    than Clang 13, which moves the spill cliff to a smaller VRF (the
    *shape* — flat, then a cliff of cycle and DRAM overhead — is the
    paper's result).
    """
    reference = run_suite("baseline", scale=scale, vrf_fraction=1.0)
    rows = []
    for fraction in fractions:
        runs = run_suite("baseline", scale=scale, vrf_fraction=fraction)
        cycle_overheads, mem_overheads = [], []
        for name in BENCHMARK_NAMES:
            ref, got = reference[name].stats, runs[name].stats
            cycle_overheads.append(got.cycles / ref.cycles - 1.0)
            ref_bytes = max(1, ref.dram_total_bytes)
            mem_overheads.append(got.dram_total_bytes / ref_bytes - 1.0)
        paper_cfg = paper_geometry(SMConfig.baseline,
                                   ).with_(vrf_fraction=fraction)
        from repro.area.model import _regfile_bits
        vrf_bits, srf_bits = _regfile_bits(paper_cfg)
        storage_kb = (vrf_bits + srf_bits) // 1024
        uncompressed_kb = (REGS_PER_THREAD * paper_cfg.num_threads * 32) // 1024
        rows.append({
            "vrf_registers": paper_cfg.vrf_slots,
            "fraction": fraction,
            "storage_kb": storage_kb,
            "compress_ratio": storage_kb / uncompressed_kb,
            "cycle_overhead": geomean(cycle_overheads),
            "mem_access_overhead": geomean(mem_overheads),
        })
    return rows


# ---------------------------------------------------------------------------
# Figure 10: proportion of registers stored as vectors in the VRF
# ---------------------------------------------------------------------------

def fig10_vrf_residency(scale=1):
    """Per benchmark: GP-register and metadata VRF residency (with and
    without the null-value optimisation).  Lower is better."""
    with_nvo = run_suite("cheri_opt", scale=scale)
    without_nvo = run_suite("cheri_opt_no_nvo", scale=scale)
    rows = []
    for name in BENCHMARK_NAMES:
        stats = with_nvo[name].stats
        arch = with_nvo[name].config.arch_vector_regs
        rows.append({
            "benchmark": name,
            "gp": stats.vrf_residency(arch),
            "meta_nvo": stats.vrf_residency(arch, metadata=True),
            "meta_no_nvo": without_nvo[name].stats.vrf_residency(
                arch, metadata=True),
        })
    return rows


# ---------------------------------------------------------------------------
# Figure 11: registers per thread used to hold capabilities
# ---------------------------------------------------------------------------

def fig11_capability_registers(scale=1):
    """Max architectural registers per thread ever holding a capability."""
    runs = run_suite("cheri_opt", scale=scale)
    return [(name, runs[name].stats.cap_regs_per_thread)
            for name in BENCHMARK_NAMES]


# ---------------------------------------------------------------------------
# Figure 12: DRAM bandwidth usage with/without CHERI
# ---------------------------------------------------------------------------

def fig12_dram_traffic(scale=1):
    """Per benchmark: DRAM bytes moved, baseline vs optimised CHERI."""
    base = run_suite("baseline", scale=scale)
    cheri = run_suite("cheri_opt", scale=scale)
    rows = []
    for name in BENCHMARK_NAMES:
        b = base[name].stats.dram_total_bytes
        c = cheri[name].stats.dram_total_bytes
        rows.append({
            "benchmark": name,
            "baseline_bytes": b,
            "cheri_bytes": c,
            "ratio": c / b if b else 1.0,
        })
    return rows


# ---------------------------------------------------------------------------
# Figure 13: execution-time overhead of optimised CHERI
# ---------------------------------------------------------------------------

def fig13_execution_overhead(scale=1):
    """Per benchmark cycle overhead of CHERI (Optimised) vs Baseline."""
    base = run_suite("baseline", scale=scale)
    cheri = run_suite("cheri_opt", scale=scale)
    rows = []
    overheads = []
    for name in BENCHMARK_NAMES:
        overhead = (cheri[name].stats.cycles / base[name].stats.cycles) - 1.0
        rows.append((name, overhead))
        overheads.append(overhead)
    return rows, geomean(overheads)


# ---------------------------------------------------------------------------
# Figure 14: software bounds checking (the Rust comparison)
# ---------------------------------------------------------------------------

def fig14_boundscheck_overhead(scale=1):
    """Per benchmark cycle overhead of software bounds checks vs Baseline.

    Reproduces the *bounds checking* component of the paper's Rust port
    (34% geomean); the remaining Rust-codegen overhead (46% total) comes
    from compiler differences outside this reproduction's scope.
    """
    base = run_suite("baseline", scale=scale)
    checked = run_suite("boundscheck", scale=scale)
    rows = []
    overheads = []
    for name in BENCHMARK_NAMES:
        overhead = (checked[name].stats.cycles
                    / base[name].stats.cycles) - 1.0
        rows.append((name, overhead))
        overheads.append(overhead)
    return rows, geomean(overheads)


# ---------------------------------------------------------------------------
# Background: value regularity of register writes (paper section 2.2)
# ---------------------------------------------------------------------------

def value_regularity(scale=1):
    """Per benchmark: fraction of written vectors that were uniform/affine
    (data register file) and uniform/partially-null (metadata file).

    The paper's premise, quoting Collange et al.: substantial value
    regularity exists between SIMT threads, and capability metadata is
    far more regular still.
    """
    runs = run_suite("cheri_opt", scale=scale)
    rows = []
    for name in BENCHMARK_NAMES:
        stats = runs[name].stats
        gp = stats.write_regularity()
        meta = stats.write_regularity(metadata=True)
        rows.append({
            "benchmark": name,
            "gp_uniform": gp["uniform"],
            "gp_affine": gp["affine"],
            "meta_uniform": meta["uniform"],
            "meta_partial_null": meta["partial_null"],
        })
    return rows


# ---------------------------------------------------------------------------
# Background: SIMD-unit utilisation under divergence (paper section 2.1)
# ---------------------------------------------------------------------------

def simd_efficiency(scale=1):
    """Per benchmark: average fraction of vector lanes active per issue.

    1.0 means perfectly convergent warps; control-flow divergence (VecGCD,
    SPMV's irregular rows, MotionEst's window clipping) lowers it.
    """
    runs = run_suite("cheri_opt", scale=scale)
    rows = []
    for name in BENCHMARK_NAMES:
        stats = runs[name].stats
        lanes = runs[name].config.num_lanes
        efficiency = stats.thread_instrs / (stats.instrs_issued * lanes)
        rows.append((name, efficiency))
    return rows


# ---------------------------------------------------------------------------
# Table 3 / Figure 7: synthesis results and CheriCapLib costs
# ---------------------------------------------------------------------------

def table3_synthesis():
    """The three Table 3 rows from the area model."""
    return [report.row() for report in table3_rows()]


def fig7_caplib_costs():
    """Figure 7's function/ALM table."""
    from repro.area.model import caplib_function_costs
    return caplib_function_costs()


# ---------------------------------------------------------------------------
# Headline summary (the abstract's numbers)
# ---------------------------------------------------------------------------

def headline_summary(scale=1):
    """The four headline claims, measured on this reproduction."""
    _, exec_overhead = fig13_execution_overhead(scale=scale)
    _, bc_overhead = fig14_boundscheck_overhead(scale=scale)
    rows = table3_rows()
    base, cheri, opt = rows
    area_reduction = 1.0 - (opt.alms - base.alms) / (cheri.alms - base.alms)
    # Register-file storage overhead of optimised CHERI, paper geometry.
    from repro.area.model import storage_bits
    base_cfg = paper_geometry(SMConfig.baseline)
    opt_cfg = paper_geometry(SMConfig.cheri_optimised)
    base_bits = storage_bits(base_cfg)
    opt_bits = storage_bits(opt_cfg)
    base_rf = base_bits["gp_vrf"] + base_bits["gp_srf"]
    rf_overhead = opt_bits["meta_rf"] / base_rf
    return {
        "execution_overhead": exec_overhead,
        "boundscheck_overhead": bc_overhead,
        "area_overhead_reduction": area_reduction,
        "rf_storage_overhead": rf_overhead,
        "rf_storage_overhead_halved_srf": rf_overhead / 2,
    }


# ---------------------------------------------------------------------------
# Cache prewarming for the experiment harness
# ---------------------------------------------------------------------------

def prewarm(scale=1, jobs=None):
    """Populate the runner caches for every named evaluation configuration.

    Called once at the start of the table/figure harness so that every
    experiment afterwards is a memo or disk hit; ``jobs`` fans the cold
    runs out across worker processes (see :func:`repro.eval.runner
    .run_suite`).
    """
    from repro.eval.runner import CONFIG_NAMES
    for config_name in CONFIG_NAMES:
        run_suite(config_name, scale=scale, jobs=jobs)
