"""Ablation study: each section-3 technique switched off individually.

The paper's CHERI (Optimised) configuration bundles five techniques:
metadata-RF compression (+NVO), the shared VRF, the one-read-port metadata
SRF, the SFU slow path for bounds instructions, and the static-PC-metadata
restriction.  These drivers quantify what each contributes — in run time,
in on-chip storage, and in logic area — by disabling one at a time.
"""

from repro.area.model import logic_alms, paper_geometry, storage_bits
from repro.benchsuite import BENCHMARK_NAMES
from repro.eval.runner import geomean, run_suite
from repro.simt.config import SMConfig

#: ablation name -> (runner config name, description).
ABLATIONS = {
    "no_nvo": ("cheri_opt_no_nvo",
               "null-value optimisation off (section 3.2)"),
    "split_vrf": ("cheri_opt_split_vrf",
                  "private metadata VRF instead of the shared VRF"),
    "dual_port_srf": ("cheri_opt_dual_port_srf",
                      "two-read-port metadata SRF (no CSC stall)"),
    "lane_bounds": ("cheri_opt_lane_bounds",
                    "get/set-bounds per lane instead of in the SFU"),
    "dynamic_pcc": ("cheri_opt_dynamic_pcc",
                    "per-thread dynamic PC metadata"),
}


def runtime_ablation(scale=1):
    """Geomean cycle delta of each ablation vs the full optimised config.

    Returns {ablation: {"overhead": float, "per_benchmark": {...}}}.
    """
    full = run_suite("cheri_opt", scale=scale)
    out = {}
    for name, (config_name, description) in ABLATIONS.items():
        runs = run_suite(config_name, scale=scale)
        deltas = {}
        for bench in BENCHMARK_NAMES:
            deltas[bench] = (runs[bench].stats.cycles
                             / full[bench].stats.cycles) - 1.0
        out[name] = {
            "description": description,
            "overhead": geomean(list(deltas.values())),
            "per_benchmark": deltas,
        }
    return out


def hardware_ablation():
    """Area/storage cost of each ablation at the paper's geometry.

    Positive deltas mean the ablated design is *more* expensive than the
    full optimised configuration.
    """
    optimised = paper_geometry(SMConfig.cheri_optimised)
    base_alms = logic_alms(optimised)
    base_bits = storage_bits(optimised)["total"]
    variants = {
        "no_nvo": optimised.with_(nvo=False),
        "split_vrf": optimised.with_(shared_vrf=False),
        "dual_port_srf": optimised.with_(metadata_srf_single_port=False),
        "lane_bounds": optimised.with_(sfu_cheri_slow_path=False),
        "dynamic_pcc": optimised.with_(static_pc_metadata=False),
        "no_metadata_compression": optimised.with_(
            compress_metadata=False, shared_vrf=False, nvo=False,
            metadata_srf_single_port=False),
    }
    out = {}
    for name, config in variants.items():
        out[name] = {
            "alms_delta": logic_alms(config) - base_alms,
            "storage_delta_kb": (storage_bits(config)["total"]
                                 - base_bits) // 1024,
        }
    return out


def render_ablation(runtime_rows, hardware_rows):
    lines = ["Ablation study: CHERI (Optimised) minus one technique each",
             "  %-24s %12s %12s %14s" % ("ablation", "cycle ovh",
                                         "ALM delta", "storage (Kb)")]
    for name in ABLATIONS:
        runtime = runtime_rows[name]["overhead"]
        hw = hardware_rows[name]
        lines.append("  %-24s %+11.2f%% %+12d %+14d" % (
            name, 100 * runtime, hw["alms_delta"],
            hw["storage_delta_kb"]))
    unc = hardware_rows["no_metadata_compression"]
    lines.append("  %-24s %12s %+12d %+14d" % (
        "no_metadata_compression", "-", unc["alms_delta"],
        unc["storage_delta_kb"]))
    return "\n".join(lines)
