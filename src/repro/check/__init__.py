"""Differential correctness harness for the simulator.

Three layers, each usable on its own:

- :mod:`repro.check.golden` — a golden-model functional interpreter for
  the full simulated ISA (RV32IMA + Zfinx + the CHERI extension).  It
  executes architectural state only — registers, capability metadata,
  tagged memory, per-thread PCs — with no pipeline or timing model, and
  its semantics are written against the instruction-set definition
  (:mod:`repro.isa`) and the capability value types (:mod:`repro.cheri`),
  independently of ``simt/pipeline.py``.
- :mod:`repro.check.lockstep` — a probe-bus sink that runs any kernel on
  the pipeline and the golden model simultaneously, diffing per-retired-
  instruction architectural state and reporting the first divergence with
  PC, source line, and both states.
- :mod:`repro.check.fuzz` — a seeded random-kernel and random-instruction
  fuzzer (``python -m repro fuzz``) that stresses ALU corners, CHERI
  Concentrate representability edges, spill-heavy register pressure, and
  memory/atomic interleavings, shrinking any divergence to a minimal
  reproducer.
"""

from repro.check.golden import GoldenFault, GoldenModel
from repro.check.lockstep import (
    Divergence,
    DivergenceError,
    LockstepChecker,
    check_benchmark,
    check_program,
)

__all__ = [
    "Divergence",
    "DivergenceError",
    "GoldenFault",
    "GoldenModel",
    "LockstepChecker",
    "check_benchmark",
    "check_program",
]
