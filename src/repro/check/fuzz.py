"""Random-kernel and random-instruction fuzzing against the golden model.

``python -m repro fuzz --seed 0 --budget 200`` generates seeded random
programs, runs each on the pipeline with a
:class:`~repro.check.lockstep.LockstepChecker` attached, and reports any
architectural divergence (or simulator crash) with a minimal shrunk
reproducer.

Seven case kinds rotate per case index, each aimed at a known-delicate
part of the simulator:

========== ==============================================================
kind       stress target
========== ==============================================================
alu        signed/unsigned integer corners, FP NaN / signed-zero /
           infinity edges, forward-branch divergence
mem        sub-word load/store endianness + tag clearing, atomics
           serialised across lanes and warps
cheri      capability-manipulation ops through the metadata register
           file and the SFU slow path (set_bounds representability
           edges, sealing, permission masks)
cheri_mem  capability-addressed loads/stores/atomics, CLC/CSC tag
           round-trips, out-of-bounds fault lockstep
spill      the alu mix under a starved VRF (heavy spill/reload traffic)
cjalr      sentry sealing, capability jumps, and jump-fault lockstep
kernel     random NoCL DSL kernels compiled in all three modes, each
           lockstep-checked and the outputs compared across modes
========== ==============================================================

Every case is reconstructible from ``(seed, index)`` via
:func:`generate_case`; failures are additionally shrunk by greedy
delta-debugging over the instruction lines and written out as standalone
reproducer files.
"""

import os
import random
import time
from dataclasses import dataclass, field

from repro.check.lockstep import DivergenceError, LockstepChecker, check_program
from repro.isa.assembler import AssemblerError, assemble_text
from repro.isa.registers import reg_name
from repro.simt.config import HEAP_BASE, SMConfig

MASK32 = 0xFFFFFFFF

#: Fuzz geometry: small enough to be fast, big enough for two warps'
#: worth of scheduling interleavings and intra-warp divergence.
NUM_WARPS = 2
NUM_LANES = 4
NUM_THREADS = NUM_WARPS * NUM_LANES

#: Case-kind rotation (one full cycle every 9 cases; kernel cases are
#: the expensive ones, so they get one slot).
SCHEDULE = ("alu", "mem", "cheri", "cheri_mem", "spill", "cjalr", "mem",
            "branchy", "kernel")

#: Integer corner values: zero/one, sign boundaries, alternating bits,
#: shift-amount edges, power-of-two edges.
INT_VALUES = (
    0, 1, 2, 3, 31, 32, 33, 64, 255, 256, 4095, 4096,
    0x7FFFFFFF, 0x80000000, 0x80000001, 0xFFFFFFFF, 0xFFFFFFFE,
    0xAAAAAAAA, 0x55555555, 0x0000FFFF, 0xFFFF0000, 0x12345678,
)

#: binary32 bit patterns: signed zeros, quiet and signalling NaNs,
#: infinities, denormals, FLT_MAX, and values near the FCVT clamping
#: boundaries at +/-2**31.
FLOAT_BITS = (
    0x00000000, 0x80000000,              # +/- 0.0
    0x3F800000, 0xBF800000,              # +/- 1.0
    0x7F800000, 0xFF800000,              # +/- inf
    0x7FC00000, 0xFFC00000,              # quiet NaNs
    0x7F800001, 0x7FBFFFFF,              # signalling NaNs
    0x00000001, 0x007FFFFF, 0x80000001,  # denormals
    0x7F7FFFFF, 0xFF7FFFFF,              # +/- FLT_MAX
    0x4EFFFFFF, 0x4F000000, 0xCF000000,  # around +/-2**31 (FCVT edges)
    0x3F000000, 0x40490FDB,              # 0.5, pi
)

#: CSetBounds request lengths around every representability edge the
#: Concentrate encoding has: zero, the mantissa width, powers of two
#: +/- 1, and near-full-address-space values.
CAP_LENGTHS = (
    0, 1, 2, 7, 8, 63, 64, 65, 255, 256, 257, 511, 4095, 4096, 4097,
    (1 << 16) - 1, 1 << 16, (1 << 16) + 1, (1 << 20) - 1, 1 << 24,
    (1 << 24) + 1, 0xFFFFF000, 0xFFFFFFFF,
)

_INT3_OPS = ("add", "sub", "sll", "slt", "sltu", "xor", "srl", "sra",
             "or", "and", "mul", "mulh", "mulhsu", "mulhu", "div",
             "divu", "rem", "remu")
_IMM_OPS = ("addi", "slti", "sltiu", "xori", "ori", "andi")
_SHIFT_IMM_OPS = ("slli", "srli", "srai")
_FLOAT3_OPS = ("fadd.s", "fsub.s", "fmul.s", "fdiv.s", "fmin.s", "fmax.s",
               "feq.s", "flt.s", "fle.s", "fsgnj.s", "fsgnjn.s", "fsgnjx.s")
_FLOAT1_OPS = ("fsqrt.s", "fcvt.w.s", "fcvt.wu.s", "fcvt.s.w", "fcvt.s.wu")
_BRANCH_OPS = ("beq", "bne", "blt", "bge", "bltu", "bgeu")
_AMO_OPS = ("amoadd.w", "amoswap.w", "amoand.w", "amoor.w", "amoxor.w",
            "amomin.w", "amomax.w", "amominu.w", "amomaxu.w")
_CGET_OPS = ("cgettag", "cgetperm", "cgetbase", "cgetlen", "cgetaddr",
             "cgettype", "cgetsealed", "cgetflags")
_CMOD1_OPS = ("cmove", "ccleartag", "csealentry")
_CMOD3_OPS = ("csetbounds", "csetboundsexact", "csetaddr", "cincoffset",
              "candperm", "csetflags")


@dataclass
class Case:
    """One generated fuzz case, reconstructible from ``(seed, index)``."""

    index: int
    kind: str
    config_name: str            # baseline | cheri | cheri_opt (seq cases)
    body: list = field(default_factory=list)   # asm lines, halt appended
    init_regs: dict = field(default_factory=dict)
    init_cap_regs: dict = field(default_factory=dict)
    vrf_fraction: float = 0.375
    source: str = ""            # DSL source (kernel cases)
    kernel_inputs: tuple = ()   # (a values, b values) for kernel cases


@dataclass
class FuzzFailure:
    """A divergence/crash found by the fuzzer, with its reproducer."""

    index: int
    kind: str
    signature: str      # "divergence" | "crash:<ExcType>" | "cross-mode"
    message: str
    case: Case
    reduced_body: list = None
    path: str = ""


@dataclass
class FuzzReport:
    seed: int
    cases: int
    failures: list
    elapsed: float

    @property
    def ok(self):
        return not self.failures

    def summary(self):
        lines = ["fuzz: seed=%d, %d case(s) in %.1fs, %d failure(s)"
                 % (self.seed, self.cases, self.elapsed,
                    len(self.failures))]
        for failure in self.failures:
            lines.append("  case %d (%s): %s%s"
                         % (failure.index, failure.kind, failure.signature,
                            " -> %s" % failure.path if failure.path else ""))
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Value helpers
# ---------------------------------------------------------------------------

def _int_vector(rng, pool=INT_VALUES):
    """Per-thread values: uniform, affine, or fully random (the three
    shapes the compressed register file treats differently)."""
    shape = rng.randrange(3)
    if shape == 0:
        return [rng.choice(pool) & MASK32] * NUM_THREADS
    if shape == 1:
        base = rng.choice(pool)
        stride = rng.choice((1, 2, 4, 8, MASK32))  # MASK32 == -1 mod 2**32
        return [(base + stride * t) & MASK32 for t in range(NUM_THREADS)]
    return [rng.choice(pool) & MASK32 for _ in range(NUM_THREADS)]


def _float_vector(rng):
    if rng.randrange(2):
        return [rng.choice(FLOAT_BITS)] * NUM_THREADS
    return [rng.choice(FLOAT_BITS) for _ in range(NUM_THREADS)]


def _r(reg):
    return reg_name(reg)


# ---------------------------------------------------------------------------
# Sequence generators
# ---------------------------------------------------------------------------

def _alu_line(rng, regs, label_state, branch_prob=0.08):
    """One random computational line; occasionally a forward branch."""
    pick = rng.random()
    rd = rng.choice(regs)
    rs1 = rng.choice(regs)
    rs2 = rng.choice(regs)
    if pick < branch_prob and label_state is not None:
        label = "L%d" % label_state["next"]
        label_state["next"] += 1
        label_state["pending"].append([rng.randrange(1, 4), label])
        return "%s %s, %s, %s" % (rng.choice(_BRANCH_OPS), _r(rs1),
                                  _r(rs2), label)
    if pick < 0.42:
        return "%s %s, %s, %s" % (rng.choice(_INT3_OPS), _r(rd), _r(rs1),
                                  _r(rs2))
    if pick < 0.58:
        return "%s %s, %s, %d" % (rng.choice(_IMM_OPS), _r(rd), _r(rs1),
                                  rng.randrange(-2048, 2048))
    if pick < 0.66:
        return "%s %s, %s, %d" % (rng.choice(_SHIFT_IMM_OPS), _r(rd),
                                  _r(rs1), rng.randrange(0, 32))
    if pick < 0.82:
        return "%s %s, %s, %s" % (rng.choice(_FLOAT3_OPS), _r(rd), _r(rs1),
                                  _r(rs2))
    if pick < 0.92:
        return "%s %s, %s" % (rng.choice(_FLOAT1_OPS), _r(rd), _r(rs1))
    if pick < 0.96:
        return "lui %s, %d" % (_r(rd), rng.randrange(0, 1 << 20))
    return "auipc %s, %d" % (_r(rd), rng.randrange(0, 1 << 20))


def _emit_alu_body(rng, regs, count, branch_prob=0.08):
    """A body of random ALU/FP lines with forward-only branches (labels
    always resolve later in the stream, so every case terminates)."""
    body = []
    labels = {"next": 0, "pending": []}
    for _ in range(count):
        body.append(_alu_line(rng, regs, labels, branch_prob))
        for entry in labels["pending"]:
            entry[0] -= 1
        while labels["pending"] and labels["pending"][0][0] <= 0:
            body.append("%s:" % labels["pending"].pop(0)[1])
    for _, label in labels["pending"]:
        body.append("%s:" % label)
    return body


def _seed_int_float_regs(rng, regs):
    init = {}
    for reg in regs:
        init[reg] = (_float_vector(rng) if rng.random() < 0.4
                     else _int_vector(rng))
    return init


def _gen_alu(rng, index):
    regs = list(range(5, 16))
    return Case(index=index, kind="alu", config_name="baseline",
                body=_emit_alu_body(rng, regs, rng.randrange(20, 50)),
                init_regs=_seed_int_float_regs(rng, regs))


def _gen_branchy(rng, index):
    """The alu mix re-weighted hard toward forward branches (~4x the
    usual rate) over per-lane scrambled operands: warps spend most of
    the run partially diverged, driving the vector tier's masked issue
    and the jit tier's masked compiled-region variants instead of the
    converged fast paths."""
    regs = list(range(5, 16))
    return Case(index=index, kind="branchy",
                config_name=rng.choice(("baseline", "cheri_opt")),
                body=_emit_alu_body(rng, regs, rng.randrange(30, 70),
                                    branch_prob=0.30),
                init_regs=_seed_int_float_regs(rng, regs))


def _gen_spill(rng, index):
    """The alu mix over 27 live vectors with a 5-slot VRF: every access
    spills or reloads, on both the data and (in CHERI mode) metadata
    register files."""
    regs = list(range(5, 32))
    config = rng.choice(("baseline", "cheri_opt"))
    return Case(index=index, kind="spill", config_name=config,
                body=_emit_alu_body(rng, regs, rng.randrange(40, 80)),
                init_regs=_seed_int_float_regs(rng, regs),
                vrf_fraction=0.08)


def _gen_mem(rng, index):
    """Sub-word loads/stores on private per-thread windows plus atomics
    on one shared word (serialisation order must match the golden
    model's lane-order stepping)."""
    value_regs = list(range(5, 10))
    init = {reg: _int_vector(rng) for reg in value_regs}
    init[10] = [HEAP_BASE + 64 * t for t in range(NUM_THREADS)]   # private
    init[11] = [HEAP_BASE + 0x800] * NUM_THREADS                  # shared
    body = []
    ops = (("lw", 4), ("lh", 2), ("lhu", 2), ("lb", 1), ("lbu", 1),
           ("sw", 4), ("sh", 2), ("sb", 1))
    for _ in range(rng.randrange(20, 45)):
        pick = rng.random()
        if pick < 0.55:
            name, width = rng.choice(ops)
            reg = rng.choice(value_regs)
            imm = rng.randrange(0, 64 // width) * width
            body.append("%s %s, %d(%s)" % (name, _r(reg), imm, _r(10)))
        elif pick < 0.75:
            body.append("%s %s, %s, %s"
                        % (rng.choice(_AMO_OPS), _r(rng.choice(value_regs)),
                           _r(11), _r(rng.choice(value_regs))))
        else:
            body.append(_alu_line(rng, value_regs, None))
    return Case(index=index, kind="mem", config_name="baseline", body=body,
                init_regs=init)


def _make_window_cap(rng, perms=None):
    """A tagged capability over a heap window, built like the runtime
    builds buffer capabilities (so bounds are usually exact)."""
    from repro.cheri.capability import Perms, root_capability
    base = HEAP_BASE + rng.randrange(0, 16) * 0x1000
    length = rng.choice((64, 128, 256, 512, 4096))
    if perms is None:
        perms = (Perms.GLOBAL | Perms.LOAD | Perms.STORE | Perms.LOAD_CAP
                 | Perms.STORE_CAP)
    cap, _ = root_capability().set_bounds(base, length)
    return cap.and_perms(perms), base, length


def _gen_cheri(rng, index):
    """Capability manipulation through the metadata register file and
    (in cheri_opt) the SFU slow path.  The value semantics are shared
    with the golden model by construction — what this stresses is the
    register-file compression, uniform/affine detection, and the
    SFU-vs-lane execution paths."""
    from repro.cheri.capability import root_capability
    config = rng.choice(("cheri", "cheri_opt"))
    cap_regs = (10, 11, 12, 13)
    int_regs = (5, 6, 7, 8)
    init_caps = {}
    for reg in cap_regs:
        cap, base, length = _make_window_cap(rng)
        if rng.random() < 0.3:
            cap = cap.set_addr((base + rng.choice((0, 1, length - 1, length,
                                                   length + 8))) & MASK32)
        if rng.random() < 0.15:
            cap = root_capability()
        init_caps[reg] = [cap.inc_addr(8 * t) if rng.random() < 0.5 else cap
                          for t in range(NUM_THREADS)]
    init = {reg: _int_vector(rng, CAP_LENGTHS) for reg in int_regs}
    body = []
    for _ in range(rng.randrange(20, 45)):
        pick = rng.random()
        if pick < 0.25:
            body.append("%s %s, %s" % (rng.choice(_CGET_OPS),
                                       _r(rng.choice(int_regs)),
                                       _r(rng.choice(cap_regs))))
        elif pick < 0.35:
            body.append("%s %s, %s" % (rng.choice(("crrl", "cram")),
                                       _r(rng.choice(int_regs)),
                                       _r(rng.choice(int_regs))))
        elif pick < 0.5:
            body.append("%s %s, %s" % (rng.choice(_CMOD1_OPS),
                                       _r(rng.choice(cap_regs)),
                                       _r(rng.choice(cap_regs))))
        elif pick < 0.75:
            body.append("%s %s, %s, %s" % (rng.choice(_CMOD3_OPS),
                                           _r(rng.choice(cap_regs)),
                                           _r(rng.choice(cap_regs)),
                                           _r(rng.choice(int_regs))))
        elif pick < 0.85:
            body.append("cincoffsetimm %s, %s, %d"
                        % (_r(rng.choice(cap_regs)),
                           _r(rng.choice(cap_regs)),
                           rng.randrange(-2048, 2048)))
        elif pick < 0.92:
            body.append("csetboundsimm %s, %s, %d"
                        % (_r(rng.choice(cap_regs)),
                           _r(rng.choice(cap_regs)),
                           rng.randrange(0, 2048)))
        else:
            body.append(_alu_line(rng, int_regs, None))
    return Case(index=index, kind="cheri", config_name=config, body=body,
                init_regs=init, init_cap_regs=init_caps)


def _gen_cheri_mem(rng, index):
    """Capability-addressed memory: CLx/CSx sub-word semantics, CLC/CSC
    tag round-trips, capability atomics, and (sometimes) deliberate
    out-of-bounds accesses exercising fault lockstep."""
    from repro.cheri.capability import Perms
    config = rng.choice(("cheri", "cheri_opt"))
    value_regs = (5, 6, 7)
    init = {reg: _int_vector(rng) for reg in value_regs}
    data_perms = (Perms.GLOBAL | Perms.LOAD | Perms.STORE | Perms.LOAD_CAP
                  | Perms.STORE_CAP)
    perm_roll = rng.random()
    if perm_roll < 0.15:
        data_perms &= ~Perms.STORE_CAP   # CSC faults, CLC still works
    elif perm_roll < 0.3:
        data_perms &= ~Perms.LOAD_CAP    # CLC silently strips tags
    window, base, length = _make_window_cap(rng, data_perms)
    shared, _, _ = _make_window_cap(rng)
    init_caps = {
        10: [window.set_addr(base + 8 * t) for t in range(NUM_THREADS)],
        11: shared,                       # uniform: one shared address
        12: [window.set_addr(base + 8 * t) for t in range(NUM_THREADS)],
    }
    body = []
    cap_ops = (("clw", 4), ("clh", 2), ("clhu", 2), ("clb", 1),
               ("clbu", 1), ("csw", 4), ("csh", 2), ("csb", 1))
    for _ in range(rng.randrange(18, 40)):
        pick = rng.random()
        if pick < 0.45:
            name, width = rng.choice(cap_ops)
            imm = rng.randrange(0, 8) * width
            if rng.random() < 0.08:
                imm = length  # one lane lands out of bounds -> fault
            body.append("%s %s, %d(%s)" % (name, _r(rng.choice(value_regs)),
                                           imm, _r(10)))
        elif pick < 0.6:
            imm = rng.randrange(0, 4) * 8
            if rng.random() < 0.5:
                body.append("csc %s, %d(%s)" % (_r(12), imm, _r(10)))
            else:
                body.append("clc %s, %d(%s)" % (_r(13), imm, _r(10)))
        elif pick < 0.7:
            body.append("camoadd.w %s, %s, %s"
                        % (_r(rng.choice(value_regs)), _r(11),
                           _r(rng.choice(value_regs))))
        elif pick < 0.8:
            body.append("cgetaddr %s, %s" % (_r(rng.choice(value_regs)),
                                             _r(rng.choice((10, 11, 13)))))
        else:
            body.append(_alu_line(rng, value_regs, None))
    return Case(index=index, kind="cheri_mem", config_name=config,
                body=body, init_regs=init, init_cap_regs=init_caps)


def _gen_cjalr(rng, index):
    """A capability jump through an AUIPCC-derived (optionally sentry-
    sealed) target; negative variants clear the tag or the EXECUTE
    permission and must fault identically on both models."""
    from repro.cheri.capability import Perms
    config = rng.choice(("cheri", "cheri_opt"))
    variant = rng.choice(("plain", "sentry", "sentry", "untagged", "noexec"))
    int_regs = (5, 7, 8)
    init = {reg: _int_vector(rng) for reg in int_regs}
    init[9] = [int(Perms.all_perms() & ~Perms.EXECUTE)] * NUM_THREADS
    body = []
    for _ in range(rng.randrange(0, 4)):            # preamble
        body.append(_alu_line(rng, int_regs, None))
    auipcc_index = len(body)
    body.append("auipcc %s, 0" % _r(6))
    body.append("")                                  # cincoffsetimm (below)
    extra = 0
    if variant == "sentry":
        body.append("csealentry %s, %s" % (_r(6), _r(6)))
        extra = 1
    elif variant == "untagged":
        body.append("ccleartag %s, %s" % (_r(6), _r(6)))
        extra = 1
    elif variant == "noexec":
        body.append("candperm %s, %s, %s" % (_r(6), _r(6), _r(9)))
        extra = 1
    body.append("cjalr %s, %s, 0" % (_r(1), _r(6)))
    dead = rng.randrange(0, 3)
    for _ in range(dead):                            # skipped by the jump
        body.append(_alu_line(rng, int_regs, None))
    target_index = auipcc_index + 3 + extra + dead
    body[auipcc_index + 1] = ("cincoffsetimm %s, %s, %d"
                              % (_r(6), _r(6),
                                 4 * (target_index - auipcc_index)))
    for _ in range(rng.randrange(2, 6)):             # landing pad
        body.append(_alu_line(rng, int_regs, None))
    return Case(index=index, kind="cjalr", config_name=config, body=body,
                init_regs=init)


# ---------------------------------------------------------------------------
# DSL-kernel generator
# ---------------------------------------------------------------------------

_KERNEL_CONSTS = (0, 1, 2, 3, 5, 255, 2047, 4096, 65535, -1, -2048,
                  123456789)


def _kernel_expr(rng, names, depth=0):
    if depth >= 2 or rng.random() < 0.3:
        if rng.random() < 0.35:
            return str(rng.choice(_KERNEL_CONSTS))
        return rng.choice(names)
    op = rng.choice(("+", "-", "*", "&", "|", "^", "<<", ">>"))
    left = _kernel_expr(rng, names, depth + 1)
    if op in ("<<", ">>"):
        return "(%s %s %d)" % (left, op, rng.randrange(0, 13))
    return "(%s %s %s)" % (left, op, _kernel_expr(rng, names, depth + 1))


def _gen_kernel(rng, index):
    names = ["x", "y", "i"]
    stmts = []
    for k in range(rng.randrange(1, 4)):
        name = "t%d" % k
        stmts.append("        %s = %s" % (name, _kernel_expr(rng, names)))
        names.append(name)
    source = (
        "def fuzz_kernel(n: i32, a: ptr[i32], b: ptr[i32], c: ptr[i32]):\n"
        "    i = threadIdx.x + blockIdx.x * blockDim.x\n"
        "    while i < n:\n"
        "        x = a[i]\n"
        "        y = b[i]\n"
        + "\n".join(stmts) + "\n"
        "        c[i] = " + _kernel_expr(rng, names) + "\n"
        "        i += blockDim.x * gridDim.x\n"
    )
    n = 64
    signed_pool = tuple(v - (1 << 32) if v >> 31 else v for v in INT_VALUES)
    a_vals = [rng.choice(signed_pool) for _ in range(n)]
    b_vals = [rng.choice(signed_pool) for _ in range(n)]
    return Case(index=index, kind="kernel", config_name="(all modes)",
                source=source, kernel_inputs=(a_vals, b_vals))


_GENERATORS = {
    "alu": _gen_alu,
    "mem": _gen_mem,
    "cheri": _gen_cheri,
    "cheri_mem": _gen_cheri_mem,
    "spill": _gen_spill,
    "cjalr": _gen_cjalr,
    "branchy": _gen_branchy,
    "kernel": _gen_kernel,
}


def generate_case(seed, index):
    """Deterministically regenerate case ``index`` of fuzz run ``seed``."""
    kind = SCHEDULE[index % len(SCHEDULE)]
    rng = random.Random("repro-fuzz:%d:%d" % (seed, index))
    return _GENERATORS[kind](rng, index)


# ---------------------------------------------------------------------------
# Case execution
# ---------------------------------------------------------------------------

_CONFIG_FACTORIES = {
    "baseline": SMConfig.baseline,
    "cheri": SMConfig.cheri,
    "cheri_opt": SMConfig.cheri_optimised,
}


def _build_config(case, backend=None):
    config = _CONFIG_FACTORIES[case.config_name](
        num_warps=NUM_WARPS, num_lanes=NUM_LANES,
    ).with_(vrf_fraction=case.vrf_fraction)
    if backend is not None:
        config = config.with_(backend=backend)
    return config


def _run_seq(case, body, backend=None):
    """Run an instruction-sequence case; returns (signature, message) on
    failure, None on success.  A capability fault that the golden model
    reproduces exactly is a success (explained termination); a botched
    assembly (possible for shrink candidates with dangling labels) is
    reported distinctly so the shrinker treats it as 'did not reproduce'.
    """
    try:
        program = assemble_text("\n".join(list(body) + ["halt"]))
    except (AssemblerError, Exception) as exc:
        return ("unassemblable", "%s: %s" % (type(exc).__name__, exc))
    config = _build_config(case, backend)
    try:
        check_program(program, config, init_regs=case.init_regs,
                      init_cap_regs=case.init_cap_regs, max_cycles=400_000)
    except DivergenceError as exc:
        return ("divergence", str(exc))
    except Exception as exc:
        return ("crash:%s" % type(exc).__name__,
                "%s: %s" % (type(exc).__name__, exc))
    return None


def _run_kernel(case, backend=None, opt_levels=(0, 1)):
    """Compile and run a DSL kernel in all three modes at every opt
    level in ``opt_levels``, each under lockstep, then require
    bit-identical outputs across every (mode, opt) cell.

    This is the compiler's differential test: the ``-O1`` pipeline
    (``repro.nocl.opt``) must produce the same architectural results as
    the direct ``-O0`` translation for arbitrary generated kernels, not
    just the benchmark suite.
    """
    from repro.eval import runner
    from repro.nocl import NoCLRuntime, i32
    from repro.nocl.dsl import KernelSource
    from repro.obs import attach, detach

    try:
        kernel = KernelSource.from_source(case.source)
    except Exception as exc:
        return ("crash:%s" % type(exc).__name__,
                "kernel parse: %s: %s" % (type(exc).__name__, exc))
    a_vals, b_vals = case.kernel_inputs
    n = len(a_vals)
    outputs = {}
    cells = [(config_name, opt)
             for config_name in ("baseline", "cheri_opt", "boundscheck")
             for opt in opt_levels]
    for config_name, opt in cells:
        label = "%s@O%d" % (config_name, opt)
        overrides = {"opt": opt}
        if backend is not None:
            overrides["backend"] = backend
        mode, config = runner.config_for(config_name, num_warps=NUM_WARPS,
                                         num_lanes=NUM_LANES, **overrides)
        rt = NoCLRuntime(mode, config=config)
        checker = LockstepChecker()
        attach(rt.sm, checker)
        try:
            a = rt.alloc(i32, n)
            b = rt.alloc(i32, n)
            c = rt.alloc(i32, n)
            rt.upload(a, a_vals)
            rt.upload(b, b_vals)
            rt.launch(kernel, 2, NUM_LANES, [n, a, b, c])
            outputs[label] = rt.download(c)
        except DivergenceError as exc:
            checker._aborted = True
            return ("divergence", "[%s] %s" % (label, exc))
        except Exception as exc:
            checker._aborted = True
            return ("crash:%s" % type(exc).__name__,
                    "[%s] %s: %s" % (label, type(exc).__name__, exc))
        finally:
            detach(rt.sm)
    ref_label = "baseline@O%d" % opt_levels[0]
    reference = outputs[ref_label]
    for label, values in outputs.items():
        if values != reference:
            diffs = [(i, reference[i], values[i]) for i in range(n)
                     if reference[i] != values[i]][:8]
            return ("cross-mode",
                    "%s disagrees with %s at %d element(s); first: %s"
                    % (label, ref_label, len(diffs), diffs))
    return None


def run_case(case, backend=None, opt_levels=(0, 1)):
    """Run one case; returns (signature, message) on failure, else None."""
    if case.kind == "kernel":
        return _run_kernel(case, backend, opt_levels)
    return _run_seq(case, case.body, backend)


# ---------------------------------------------------------------------------
# Shrinking
# ---------------------------------------------------------------------------

#: Upper bound on shrink-candidate executions per failure.
MAX_SHRINK_RUNS = 150


def shrink_case(case, signature, backend=None):
    """Greedy delta-debugging over the body lines: repeatedly drop the
    largest chunk that still reproduces the same failure signature."""
    lines = list(case.body)
    runs = 0
    chunk = max(1, len(lines) // 2)
    while chunk >= 1 and runs < MAX_SHRINK_RUNS:
        i = 0
        while i < len(lines) and runs < MAX_SHRINK_RUNS:
            candidate = lines[:i] + lines[i + chunk:]
            runs += 1
            outcome = _run_seq(case, candidate, backend)
            if outcome is not None and outcome[0] == signature:
                lines = candidate
            else:
                i += chunk
        if chunk == 1:
            break
        chunk = max(1, chunk // 2)
    return lines


# ---------------------------------------------------------------------------
# Reproducer files
# ---------------------------------------------------------------------------

def _render_cap(cap):
    return ("tag=%d addr=0x%08x base=0x%08x top=0x%09x perms=0x%03x "
            "otype=%d flags=%d" % (int(cap.tag), cap.addr, cap.base,
                                   cap.top, int(cap.perms), cap.otype,
                                   cap.flags))


def render_reproducer(failure, seed):
    case = failure.case
    lines = [
        "# repro fuzz reproducer",
        "# regenerate: repro.check.fuzz.generate_case(seed=%d, index=%d)"
        % (seed, case.index),
        "# kind=%s config=%s" % (case.kind, case.config_name),
        "# failure: %s" % failure.signature,
    ]
    if case.kind == "kernel":
        lines.append("# inputs a=%r" % (case.kernel_inputs[0],))
        lines.append("# inputs b=%r" % (case.kernel_inputs[1],))
        lines.append("")
        lines.append(case.source.rstrip())
    else:
        lines.append("# geometry: %d warps x %d lanes, vrf_fraction=%g"
                     % (NUM_WARPS, NUM_LANES, case.vrf_fraction))
        for reg in sorted(case.init_regs):
            lines.append("# init %s = %r" % (_r(reg), case.init_regs[reg]))
        for reg in sorted(case.init_cap_regs):
            caps = case.init_cap_regs[reg]
            if not isinstance(caps, (list, tuple)):
                caps = [caps]
            for t, cap in enumerate(caps):
                lines.append("# init cap %s[t%d]: %s"
                             % (_r(reg), t, _render_cap(cap)))
        body = (failure.reduced_body if failure.reduced_body is not None
                else case.body)
        lines.append("")
        lines.extend(body)
        lines.append("halt")
    lines.append("")
    lines.append("# --- failure detail ---")
    lines.extend("# " + text for text in failure.message.splitlines())
    lines.append("")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------

def run_fuzz(seed=0, budget=200, time_budget=None, out_dir=None,
             verbose=False, log=None, backend=None, kinds=None,
             opt_levels=(0, 1)):
    """Fuzz until ``budget`` cases have run (or ``time_budget`` seconds
    have elapsed, whichever comes first when both are set).  Returns a
    :class:`FuzzReport`; reproducers for failures are written under
    ``out_dir`` when given.

    ``kinds`` biases the run to a subset of :data:`SCHEDULE` kinds
    (e.g. ``("branchy",)`` for a divergence soak): other slots in the
    rotation are skipped, but every executed case keeps its global
    ``(seed, index)`` identity so reproducers regenerate unchanged.
    ``opt_levels`` selects the compiler opt levels kernel cases run
    differentially (default: O0 vs O1, cross-checked bit-for-bit).
    """
    emit = log or (lambda text: None)
    if kinds:
        kinds = frozenset(kinds)
        unknown = kinds - set(SCHEDULE)
        if unknown:
            raise ValueError("unknown fuzz kind(s): %s"
                             % ", ".join(sorted(unknown)))
    start = time.monotonic()
    failures = []
    index = 0
    executed = 0
    while True:
        elapsed = time.monotonic() - start
        if time_budget is not None and elapsed >= time_budget:
            break
        if budget is not None and executed >= budget:
            break
        if kinds and SCHEDULE[index % len(SCHEDULE)] not in kinds:
            index += 1
            continue
        executed += 1
        case = generate_case(seed, index)
        outcome = run_case(case, backend, opt_levels)
        if verbose:
            emit("case %4d %-9s %-9s %s"
                 % (index, case.kind, case.config_name,
                    "ok" if outcome is None else outcome[0]))
        if outcome is not None:
            signature, message = outcome
            failure = FuzzFailure(index=index, kind=case.kind,
                                  signature=signature, message=message,
                                  case=case)
            if case.kind != "kernel":
                emit("case %d (%s): %s — shrinking..."
                     % (index, case.kind, signature))
                failure.reduced_body = shrink_case(case, signature,
                                                   backend)
            if out_dir:
                os.makedirs(out_dir, exist_ok=True)
                path = os.path.join(out_dir, "case_%04d_%s.txt"
                                    % (index, case.kind))
                with open(path, "w") as stream:
                    stream.write(render_reproducer(failure, seed))
                failure.path = path
            emit("FAIL case %d (%s): %s" % (index, case.kind, signature))
            failures.append(failure)
        index += 1
    return FuzzReport(seed=seed, cases=executed, failures=failures,
                      elapsed=time.monotonic() - start)


# ---------------------------------------------------------------------------
# Sharded fuzzing
# ---------------------------------------------------------------------------

def shard_seed(seed, shard):
    """Deterministic per-shard sub-seed.

    Shard 0 keeps the base seed, so ``--jobs 1`` covers exactly the same
    cases as a serial run; higher shards derive disjoint seeds (every
    case stays reconstructible from ``(sub_seed, index)``).
    """
    if shard == 0:
        return seed
    return (seed * 65537 + shard) & 0x7FFFFFFF


def _fuzz_shard(seed, shard, budget, time_budget, out_dir, verbose,
                backend=None, kinds=None, opt_levels=(0, 1)):
    """Worker entry point: one shard's fuzz run, summarised picklably."""
    sub = shard_seed(seed, shard)
    shard_out = os.path.join(out_dir, "shard%02d" % shard) if out_dir \
        else None
    report = run_fuzz(seed=sub, budget=budget, time_budget=time_budget,
                      out_dir=shard_out, verbose=verbose, backend=backend,
                      kinds=kinds, opt_levels=opt_levels)
    return {
        "shard": shard,
        "seed": sub,
        "cases": report.cases,
        "elapsed": report.elapsed,
        "failures": [
            {"index": failure.index, "kind": failure.kind,
             "signature": failure.signature, "message": failure.message,
             "path": failure.path}
            for failure in report.failures
        ],
    }


def run_fuzz_parallel(seed=0, budget=200, jobs=2, time_budget=None,
                      out_dir=None, verbose=False, log=None, backend=None,
                      kinds=None, opt_levels=(0, 1)):
    """Shard the fuzz budget across ``jobs`` worker processes.

    Each shard fuzzes under its own :func:`shard_seed`-derived seed (the
    schedule rotation means identical indices would otherwise generate
    identical cases in every shard); a ``time_budget`` applies to each
    shard in wall-clock parallel.  Shard reproducers land under
    ``out_dir/shardNN/`` and the merged :class:`FuzzReport` carries every
    failure with its reproducer path.
    """
    from concurrent.futures import ProcessPoolExecutor

    emit = log or (lambda text: None)
    jobs = max(1, jobs)
    start = time.monotonic()
    share, extra = divmod(budget, jobs) if budget is not None else (None, 0)
    shard_budgets = [None if budget is None
                     else share + (1 if shard < extra else 0)
                     for shard in range(jobs)]
    with ProcessPoolExecutor(max_workers=jobs) as pool:
        futures = [
            pool.submit(_fuzz_shard, seed, shard, shard_budgets[shard],
                        time_budget, out_dir, verbose, backend, kinds,
                        opt_levels)
            for shard in range(jobs)
            if shard_budgets[shard] is None or shard_budgets[shard] > 0
        ]
        summaries = [future.result() for future in futures]
    failures = []
    cases = 0
    for summary in summaries:
        cases += summary["cases"]
        emit("shard %d (seed %d): %d case(s), %d failure(s), %.1fs"
             % (summary["shard"], summary["seed"], summary["cases"],
                len(summary["failures"]), summary["elapsed"]))
        for failed in summary["failures"]:
            failures.append(FuzzFailure(
                index=failed["index"], kind=failed["kind"],
                signature="shard%d:%s" % (summary["shard"],
                                          failed["signature"]),
                message=failed["message"], case=None, path=failed["path"]))
    return FuzzReport(seed=seed, cases=cases, failures=failures,
                      elapsed=time.monotonic() - start)
