"""Golden-model functional interpreter for the simulated ISA.

An architectural oracle for differential testing: it executes RV32IMA +
Zfinx + the CHERI instruction subset one instruction at a time per
hardware thread over plain architectural state — 32 general-purpose
registers, 32 capability-metadata words, a program counter, a
program-counter capability, and a tagged word-granule memory.  There is
no pipeline, no scheduler, no register-file compression, and no timing.

The semantics here are written against the instruction-set definition
(:mod:`repro.isa.instructions`), the RISC-V unprivileged spec, and the
capability value types in :mod:`repro.cheri` — deliberately **not**
against ``repro.simt.pipeline``.  The lockstep checker
(:mod:`repro.check.lockstep`) then cross-checks the two implementations
per retired instruction; any disagreement is a bug in one of them.

Floating point rounds through IEEE-754 binary32 via host ``struct``
packing — the same arithmetic contract the simulated ALU declares — so
NaN payloads and rounding agree by construction.  fmin/fmax follow the
RISC-V F spec (a NaN operand is ignored; -0.0 < +0.0), conversions
truncate toward zero and saturate.
"""

import math
import struct

from repro.cheri import concentrate
from repro.cheri.capability import Capability, Perms
from repro.isa.instructions import (
    ACCESS_WIDTH,
    AMO_OPS,
    LOAD_OPS,
    STORE_OPS,
    Op,
)

MASK32 = 0xFFFFFFFF
MASK64 = (1 << 64) - 1
_CANONICAL_NAN = 0x7FC00000


class GoldenFault(Exception):
    """The golden model hit an architectural fault.

    ``kind`` is the fault classification, matching the *class name* of
    the exception the pipeline would raise for the same event:
    ``TagViolation``, ``SealViolation``, ``PermissionViolation``,
    ``BoundsViolation``, ``SoftwareTrap`` or ``MemoryError_``.
    """

    def __init__(self, kind, message, thread=None, pc=None):
        super().__init__("%s: %s" % (kind, message))
        self.kind = kind
        self.thread = thread
        self.pc = pc


# ---------------------------------------------------------------------------
# Scalar integer semantics (RV32IM)
# ---------------------------------------------------------------------------

def _sx(value):
    value &= MASK32
    return value - (1 << 32) if value >> 31 else value


def _sll(a, b):
    return (a << (b & 31)) & MASK32


def _srl(a, b):
    return (a & MASK32) >> (b & 31)


def _sra(a, b):
    return (_sx(a) >> (b & 31)) & MASK32


def _div(a, b):
    a, b = _sx(a), _sx(b)
    if b == 0:
        return MASK32
    if a == -(1 << 31) and b == -1:
        return 0x80000000
    quotient = abs(a) // abs(b)
    return (-quotient if (a < 0) != (b < 0) else quotient) & MASK32


def _rem(a, b):
    a, b = _sx(a), _sx(b)
    if b == 0:
        return a & MASK32
    if a == -(1 << 31) and b == -1:
        return 0
    remainder = abs(a) % abs(b)
    return (-remainder if a < 0 else remainder) & MASK32


def _divu(a, b):
    b &= MASK32
    return MASK32 if b == 0 else (a & MASK32) // b


def _remu(a, b):
    b &= MASK32
    return (a & MASK32) if b == 0 else (a & MASK32) % b


_INT2 = {
    Op.ADD: lambda a, b: (a + b) & MASK32,
    Op.SUB: lambda a, b: (a - b) & MASK32,
    Op.SLL: _sll, Op.SRL: _srl, Op.SRA: _sra,
    Op.XOR: lambda a, b: (a ^ b) & MASK32,
    Op.OR: lambda a, b: (a | b) & MASK32,
    Op.AND: lambda a, b: (a & b) & MASK32,
    Op.SLT: lambda a, b: int(_sx(a) < _sx(b)),
    Op.SLTU: lambda a, b: int((a & MASK32) < (b & MASK32)),
    Op.MUL: lambda a, b: (a * b) & MASK32,
    Op.MULH: lambda a, b: ((_sx(a) * _sx(b)) >> 32) & MASK32,
    Op.MULHSU: lambda a, b: ((_sx(a) * (b & MASK32)) >> 32) & MASK32,
    Op.MULHU: lambda a, b: (((a & MASK32) * (b & MASK32)) >> 32) & MASK32,
    Op.DIV: _div, Op.DIVU: _divu, Op.REM: _rem, Op.REMU: _remu,
}

_INT_IMM = {
    Op.ADDI: _INT2[Op.ADD], Op.SLTI: _INT2[Op.SLT],
    Op.SLTIU: _INT2[Op.SLTU], Op.XORI: _INT2[Op.XOR],
    Op.ORI: _INT2[Op.OR], Op.ANDI: _INT2[Op.AND],
    Op.SLLI: _sll, Op.SRLI: _srl, Op.SRAI: _sra,
}

_BRANCH = {
    Op.BEQ: lambda a, b: a == b,
    Op.BNE: lambda a, b: a != b,
    Op.BLT: lambda a, b: _sx(a) < _sx(b),
    Op.BGE: lambda a, b: _sx(a) >= _sx(b),
    Op.BLTU: lambda a, b: (a & MASK32) < (b & MASK32),
    Op.BGEU: lambda a, b: (a & MASK32) >= (b & MASK32),
}

_AMO = {
    Op.AMOADD_W: lambda old, v: (old + v) & MASK32,
    Op.CAMOADD_W: lambda old, v: (old + v) & MASK32,
    Op.AMOSWAP_W: lambda old, v: v,
    Op.AMOAND_W: lambda old, v: old & v,
    Op.AMOOR_W: lambda old, v: old | v,
    Op.AMOXOR_W: lambda old, v: old ^ v,
    Op.AMOMIN_W: lambda old, v: old if _sx(old) <= _sx(v) else v,
    Op.AMOMAX_W: lambda old, v: old if _sx(old) >= _sx(v) else v,
    Op.AMOMINU_W: min,
    Op.AMOMAXU_W: max,
}

_SIGNED_LOADS = frozenset({Op.LB, Op.LH, Op.CLB, Op.CLH})


# ---------------------------------------------------------------------------
# Scalar floating-point semantics (Zfinx binary32)
# ---------------------------------------------------------------------------

def _unpack(bits):
    return struct.unpack("<f", struct.pack("<I", bits & MASK32))[0]


def _pack(value):
    try:
        return struct.unpack("<I", struct.pack("<f", value))[0]
    except (OverflowError, ValueError):
        # binary32 overflow: infinity of the appropriate sign.
        return 0x7F800000 if value > 0 else 0xFF800000


def _nan_bits(bits):
    return (bits & 0x7F800000) == 0x7F800000 and (bits & 0x007FFFFF) != 0


def _pack_arith(value):
    # Arithmetic NaN results are the canonical quiet NaN (RISC-V
    # F/Zfinx); independently re-derived here so the golden model does
    # not share the pipeline's packing helper.
    if value != value:  # NaN
        return _CANONICAL_NAN
    return _pack(value)


def _fdiv(a_bits, b_bits):
    a, b = _unpack(a_bits), _unpack(b_bits)
    if b == 0.0:
        if math.isnan(a):
            return _CANONICAL_NAN
        if a == 0.0:
            return _CANONICAL_NAN
        sign = (a_bits ^ b_bits) & 0x80000000
        return 0xFF800000 if sign else 0x7F800000
    return _pack_arith(a / b)


def _fsqrt(a_bits, _b=0):
    a = _unpack(a_bits)
    if a < 0.0:
        return _CANONICAL_NAN
    return _pack_arith(math.sqrt(a))


def _fmin(a_bits, b_bits):
    a_bits &= MASK32
    b_bits &= MASK32
    a_nan, b_nan = _nan_bits(a_bits), _nan_bits(b_bits)
    if a_nan or b_nan:
        if a_nan and b_nan:
            return _CANONICAL_NAN
        return a_bits if b_nan else b_bits
    if ((a_bits | b_bits) & 0x7FFFFFFF) == 0:
        return a_bits | b_bits  # -0.0 wins for fmin
    return a_bits if _unpack(a_bits) < _unpack(b_bits) else b_bits


def _fmax(a_bits, b_bits):
    a_bits &= MASK32
    b_bits &= MASK32
    a_nan, b_nan = _nan_bits(a_bits), _nan_bits(b_bits)
    if a_nan or b_nan:
        if a_nan and b_nan:
            return _CANONICAL_NAN
        return a_bits if b_nan else b_bits
    if ((a_bits | b_bits) & 0x7FFFFFFF) == 0:
        return a_bits & b_bits  # +0.0 wins for fmax
    return a_bits if _unpack(a_bits) > _unpack(b_bits) else b_bits


def _fcvt_to_int(bits, lo, hi):
    f = _unpack(bits)
    if math.isnan(f):
        return hi & MASK32
    if math.isinf(f):
        return (hi if f > 0 else lo) & MASK32
    t = int(f)  # truncation toward zero (RTZ)
    if t < lo:
        t = lo
    elif t > hi:
        t = hi
    return t & MASK32


_FLOAT2 = {
    Op.FADD_S: lambda a, b: _pack_arith(_unpack(a) + _unpack(b)),
    Op.FSUB_S: lambda a, b: _pack_arith(_unpack(a) - _unpack(b)),
    Op.FMUL_S: lambda a, b: _pack_arith(_unpack(a) * _unpack(b)),
    Op.FDIV_S: _fdiv,
    Op.FMIN_S: _fmin, Op.FMAX_S: _fmax,
    Op.FEQ_S: lambda a, b: int(_unpack(a) == _unpack(b)),
    Op.FLT_S: lambda a, b: int(_unpack(a) < _unpack(b)),
    Op.FLE_S: lambda a, b: int(_unpack(a) <= _unpack(b)),
    Op.FSGNJ_S: lambda a, b: (a & 0x7FFFFFFF) | (b & 0x80000000),
    Op.FSGNJN_S: lambda a, b: (a & 0x7FFFFFFF) | (~b & 0x80000000),
    Op.FSGNJX_S: lambda a, b: (a ^ (b & 0x80000000)) & MASK32,
}

_FLOAT1 = {
    Op.FSQRT_S: _fsqrt,
    Op.FCVT_W_S: lambda a: _fcvt_to_int(a, -(1 << 31), (1 << 31) - 1),
    Op.FCVT_WU_S: lambda a: _fcvt_to_int(a, 0, MASK32),
    Op.FCVT_S_W: lambda a: _pack(float(_sx(a))),
    Op.FCVT_S_WU: lambda a: _pack(float(a & MASK32)),
}


# ---------------------------------------------------------------------------
# CHERI non-memory semantics
# ---------------------------------------------------------------------------

_CGET = {
    Op.CGETTAG: lambda cap: int(cap.tag),
    Op.CGETPERM: lambda cap: int(cap.perms),
    Op.CGETBASE: lambda cap: cap.base,
    # CGetLen saturates an over-large length to the XLEN maximum.
    Op.CGETLEN: lambda cap: min(cap.length, MASK32),
    Op.CGETADDR: lambda cap: cap.addr,
    Op.CGETTYPE: lambda cap: cap.otype,
    Op.CGETSEALED: lambda cap: int(cap.is_sealed),
    Op.CGETFLAGS: lambda cap: cap.flags,
}

_CRR = {
    # CRRL is an XLEN-wide result: 2^32 truncates to 0, it does not
    # saturate (CHERI-RISC-V CRoundRepresentableLength).
    Op.CRRL: lambda v: concentrate.crrl(v) & MASK32,
    Op.CRAM: concentrate.crml,
}

_CMOD1 = {
    Op.CCLEARTAG: lambda cap: cap.with_tag_cleared(),
    Op.CMOVE: lambda cap: cap,
    Op.CSEALENTRY: lambda cap: cap.seal_entry(),
}

_CMOD2 = {
    Op.CANDPERM: lambda cap, v: cap.and_perms(v),
    Op.CSETFLAGS: lambda cap, v: cap.set_flags(v),
    Op.CSETADDR: lambda cap, v: cap.set_addr(v),
    Op.CINCOFFSET: lambda cap, v: cap.inc_addr(v),
    Op.CSETBOUNDS: lambda cap, v: cap.set_bounds(cap.addr, v)[0],
    Op.CSETBOUNDSEXACT:
        lambda cap, v: cap.set_bounds(cap.addr, v, exact=True)[0],
}

_CIMM = {
    Op.CINCOFFSETIMM: lambda cap, imm: cap.inc_addr(imm),
    Op.CSETBOUNDSIMM: lambda cap, imm: cap.set_bounds(cap.addr, imm)[0],
}


class GoldenMemory:
    """Architectural tagged memory: sparse 32-bit words + per-word tags.

    Independent implementation of the architecture's memory contract:
    little-endian sub-word access, one hidden tag bit per naturally
    aligned word, data writes clear the tags they touch, a capability is
    valid only when both halves' tags are set.
    """

    def __init__(self):
        self.words = {}
        self.tags = set()

    def _check(self, addr, width):
        if addr % width:
            raise GoldenFault("MemoryError_",
                              "misaligned %d-byte access at 0x%08x"
                              % (width, addr))
        if not 0 <= addr <= (1 << 32) - width:
            raise GoldenFault("MemoryError_",
                              "address out of range: 0x%x" % addr)

    def load(self, addr, width, signed=False):
        """Read 1/2/4 bytes; returns a 32-bit pattern (sign-extended)."""
        self._check(addr, width)
        word = self.words.get(addr >> 2, 0)
        value = (word >> ((addr & 3) * 8)) & ((1 << (8 * width)) - 1)
        if signed and value >> (8 * width - 1):
            value |= MASK32 ^ ((1 << (8 * width)) - 1)
        return value

    def store(self, addr, width, value):
        self._check(addr, width)
        index = addr >> 2
        shift = (addr & 3) * 8
        mask = ((1 << (8 * width)) - 1) << shift
        self.words[index] = ((self.words.get(index, 0) & ~mask)
                             | ((value << shift) & mask))
        self.tags.discard(index)

    def load_cap(self, addr):
        self._check(addr, 8)
        index = addr >> 2
        raw = (self.words.get(index + 1, 0) << 32) | self.words.get(index, 0)
        tag = index in self.tags and (index + 1) in self.tags
        return raw, tag

    def store_cap(self, addr, raw, tag):
        self._check(addr, 8)
        index = addr >> 2
        self.words[index] = raw & MASK32
        self.words[index + 1] = (raw >> 32) & MASK32
        if tag:
            self.tags.add(index)
            self.tags.add(index + 1)
        else:
            self.tags.discard(index)
            self.tags.discard(index + 1)


class GoldenModel:
    """Per-thread architectural state with a one-instruction step function.

    ``pcc[t]`` and ``meta[t][r]`` hold capability metadata in the packed
    65-bit form ``tag << 32 | meta_word`` (address lives in ``gp``/``pc``),
    so state comparison against any other implementation is a plain
    integer compare.
    """

    def __init__(self, program, num_threads, cheri):
        self.program = list(program)
        self.num_threads = num_threads
        self.cheri = cheri
        self.gp = [[0] * 32 for _ in range(num_threads)]
        self.meta = [[0] * 32 for _ in range(num_threads)]
        self.pc = [0] * num_threads
        self.pcc = [0] * num_threads
        self.halted = [False] * num_threads
        self.memory = GoldenMemory()

    # -- state access -----------------------------------------------------

    def _cap(self, thread, reg):
        meta = self.meta[thread][reg]
        return Capability.from_meta_word(meta & MASK32,
                                         self.gp[thread][reg],
                                         meta > MASK32)

    def _pcc_cap(self, thread, addr):
        meta = self.pcc[thread]
        return Capability.from_meta_word(meta & MASK32, addr, meta > MASK32)

    def _write(self, thread, reg, value, cap=None):
        if not reg:
            return
        self.gp[thread][reg] = value & MASK32
        if self.cheri:
            self.meta[thread][reg] = (
                0 if cap is None
                else cap.meta_word() | (int(cap.tag) << 32))

    # -- faults -----------------------------------------------------------

    def _fault(self, kind, message, thread, pc):
        raise GoldenFault(kind, message, thread=thread, pc=pc)

    def _check_cap(self, cap, addr, width, perm, thread, pc, op_name):
        """The architectural capability check: tag, seal, perms, bounds."""
        if not cap.tag:
            self._fault("TagViolation",
                        "%s via untagged capability" % op_name, thread, pc)
        if cap.is_sealed:
            self._fault("SealViolation",
                        "%s via sealed capability" % op_name, thread, pc)
        if not int(cap.perms) & int(perm):
            self._fault("PermissionViolation",
                        "%s lacks %s" % (op_name, perm.name), thread, pc)
        if not (cap.base <= addr and addr + width <= cap.top):
            self._fault("BoundsViolation",
                        "%s out of bounds at 0x%08x" % (op_name, addr),
                        thread, pc)

    # -- execution --------------------------------------------------------

    def step(self, thread):
        """Fetch and execute one instruction on ``thread``.

        Returns the executed :class:`~repro.isa.instructions.Instr`, or
        ``None`` when the thread is halted.  Raises :class:`GoldenFault`
        on any architectural fault (the PC is left at the faulting
        instruction).
        """
        if self.halted[thread]:
            return None
        pc = self.pc[thread]
        index = pc >> 2
        if not 0 <= index < len(self.program):
            self._fault("SoftwareTrap",
                        "instruction fetch from unmapped pc 0x%x" % pc,
                        thread, pc)
        if self.cheri:
            pcc = self._pcc_cap(thread, pc)
            if not (pcc.tag and Perms.EXECUTE in pcc.perms):
                self._fault("PermissionViolation",
                            "PCC lacks execute permission", thread, pc)
            if not (pcc.base <= pc and pc + 4 <= pcc.top):
                self._fault("BoundsViolation",
                            "instruction fetch outside PCC bounds",
                            thread, pc)
        instr = self.program[index]
        self._exec(thread, instr, pc)
        return instr

    def _exec(self, thread, instr, pc):
        op = instr.op
        gp = self.gp[thread]
        next_pc = pc + 4

        fn = _INT2.get(op)
        if fn is not None:
            self._write(thread, instr.rd, fn(gp[instr.rs1], gp[instr.rs2]))
            self.pc[thread] = next_pc
            return

        fn = _INT_IMM.get(op)
        if fn is not None:
            self._write(thread, instr.rd,
                        fn(gp[instr.rs1], (instr.imm or 0) & MASK32))
            self.pc[thread] = next_pc
            return

        fn = _BRANCH.get(op)
        if fn is not None:
            taken = fn(gp[instr.rs1], gp[instr.rs2])
            self.pc[thread] = (pc + instr.imm) & MASK32 if taken else next_pc
            return

        if op in LOAD_OPS or op in STORE_OPS or op in AMO_OPS:
            self._exec_memory(thread, instr, pc, op)
            self.pc[thread] = next_pc
            return

        fn = _FLOAT2.get(op)
        if fn is not None:
            self._write(thread, instr.rd,
                        fn(gp[instr.rs1] & MASK32, gp[instr.rs2] & MASK32))
            self.pc[thread] = next_pc
            return

        fn = _FLOAT1.get(op)
        if fn is not None:
            self._write(thread, instr.rd, fn(gp[instr.rs1] & MASK32))
            self.pc[thread] = next_pc
            return

        fn = _CGET.get(op)
        if fn is not None:
            self._write(thread, instr.rd, fn(self._cap(thread, instr.rs1)))
            self.pc[thread] = next_pc
            return

        fn = _CRR.get(op)
        if fn is not None:
            self._write(thread, instr.rd, fn(gp[instr.rs1]))
            self.pc[thread] = next_pc
            return

        fn = _CMOD1.get(op)
        if fn is not None:
            cap = fn(self._cap(thread, instr.rs1))
            self._write(thread, instr.rd, cap.addr, cap=cap)
            self.pc[thread] = next_pc
            return

        fn = _CMOD2.get(op)
        if fn is not None:
            cap = fn(self._cap(thread, instr.rs1), gp[instr.rs2])
            self._write(thread, instr.rd, cap.addr, cap=cap)
            self.pc[thread] = next_pc
            return

        fn = _CIMM.get(op)
        if fn is not None:
            cap = fn(self._cap(thread, instr.rs1), instr.imm or 0)
            self._write(thread, instr.rd, cap.addr, cap=cap)
            self.pc[thread] = next_pc
            return

        if op is Op.LUI:
            self._write(thread, instr.rd, (instr.imm << 12) & MASK32)
            self.pc[thread] = next_pc
            return

        if op is Op.AUIPC:
            self._write(thread, instr.rd, (pc + (instr.imm << 12)) & MASK32)
            self.pc[thread] = next_pc
            return

        if op is Op.AUIPCC:
            addr = (pc + (instr.imm << 12)) & MASK32
            self._write(thread, instr.rd, addr,
                        cap=self._pcc_cap(thread, pc).set_addr(addr))
            self.pc[thread] = next_pc
            return

        if op in (Op.JAL, Op.CJAL):
            if instr.rd:
                link_cap = None
                if op is Op.CJAL:
                    link_cap = self._pcc_cap(thread, next_pc).seal_entry()
                self._write(thread, instr.rd, next_pc, cap=link_cap)
            self.pc[thread] = (pc + instr.imm) & MASK32
            return

        if op is Op.JALR:
            target = (gp[instr.rs1] + (instr.imm or 0)) & ~1 & MASK32
            if instr.rd:
                self._write(thread, instr.rd, next_pc)
            self.pc[thread] = target
            return

        if op is Op.CJALR:
            cap = self._cap(thread, instr.rs1)
            if not cap.tag:
                self._fault("TagViolation", "CJALR via untagged capability",
                            thread, pc)
            if cap.is_sealed and not cap.is_sentry:
                self._fault("SealViolation", "CJALR via sealed capability",
                            thread, pc)
            if Perms.EXECUTE not in cap.perms:
                self._fault("PermissionViolation",
                            "CJALR target lacks execute", thread, pc)
            target_cap = cap.unseal_entry() if cap.is_sentry else cap
            if instr.rd:
                link = self._pcc_cap(thread, next_pc).seal_entry()
                self._write(thread, instr.rd, next_pc, cap=link)
            self.pcc[thread] = (target_cap.meta_word()
                                | (int(target_cap.tag) << 32))
            self.pc[thread] = (target_cap.addr + (instr.imm or 0)) \
                & ~1 & MASK32
            return

        if op is Op.CSPECIALRW:
            self._write(thread, instr.rd, pc, cap=self._pcc_cap(thread, pc))
            self.pc[thread] = next_pc
            return

        if op in (Op.BARRIER, Op.FENCE):
            # Synchronisation has no architectural per-thread effect
            # beyond advancing the PC.
            self.pc[thread] = next_pc
            return

        if op is Op.HALT:
            self.halted[thread] = True  # PC stays at the halt
            return

        if op in (Op.TRAP, Op.EBREAK, Op.ECALL):
            self._fault("SoftwareTrap",
                        "software trap (%s)" % op.name.lower(), thread, pc)

        self._fault("SoftwareTrap", "unimplemented op %s" % op, thread, pc)

    def _exec_memory(self, thread, instr, pc, op):
        gp = self.gp[thread]
        width = ACCESS_WIDTH[op]
        cap_addressed = op.name.startswith("C")
        imm = instr.imm or 0
        cap = None
        if cap_addressed:
            cap = self._cap(thread, instr.rs1)
            addr = (cap.addr + imm) & MASK32
        else:
            addr = (gp[instr.rs1] + imm) & MASK32

        is_amo = op in AMO_OPS
        is_store = op in STORE_OPS

        if cap_addressed:
            if is_amo:
                self._check_cap(cap, addr, width, Perms.LOAD,
                                thread, pc, op.name)
                self._check_cap(cap, addr, width, Perms.STORE,
                                thread, pc, op.name)
            elif is_store:
                self._check_cap(cap, addr, width, Perms.STORE,
                                thread, pc, op.name)
            else:
                self._check_cap(cap, addr, width, Perms.LOAD,
                                thread, pc, op.name)

        memory = self.memory
        if is_amo:
            old = memory.load(addr, 4)
            memory.store(addr, 4, _AMO[op](old, gp[instr.rs2]))
            self._write(thread, instr.rd, old)
            return

        if is_store:
            if op is Op.CSC:
                cap2 = self._cap(thread, instr.rs2)
                if cap2.tag and Perms.STORE_CAP not in cap.perms:
                    self._fault("PermissionViolation",
                                "CSC lacks STORE_CAP permission", thread, pc)
                memory.store_cap(addr, cap2.to_mem() & MASK64, cap2.tag)
            else:
                memory.store(addr, width,
                             gp[instr.rs2] & ((1 << (8 * width)) - 1))
            return

        if op is Op.CLC:
            raw, tag = memory.load_cap(addr)
            if tag and Perms.LOAD_CAP not in cap.perms:
                tag = False  # lacking LOAD_CAP strips the loaded tag
            loaded = Capability.from_mem(raw | (int(tag) << 64))
            self._write(thread, instr.rd, loaded.addr, cap=loaded)
            return

        self._write(thread, instr.rd,
                    memory.load(addr, width, op in _SIGNED_LOADS))
