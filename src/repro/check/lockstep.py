"""Lockstep cross-checking: the pipeline vs the golden model.

A :class:`LockstepChecker` is a probe-bus sink.  At ``launch`` it
snapshots the SM's architectural state into a fresh
:class:`~repro.check.golden.GoldenModel`; on every ``retire`` event it
steps the golden model for each executed lane and diffs the architectural
effects — destination register (value and capability metadata), next PC,
halt state, and the program-counter capability; at ``finish`` it performs
a full sweep over every register, per-thread PC and the entire tagged
memory.  The first mismatch raises :class:`DivergenceError` with the PC,
the compiled source line, and both states.

All pipeline state is observed through side-effect-free accessors
(``RegFile.peek``, direct reads of the warp objects and the memory
dicts), so an attached checker cannot perturb a single simulated
statistic — pinned by ``tests/eval/test_equivalence.py``.

Fault lockstep: when the pipeline aborts the kernel with a capability
fault or software trap, :meth:`LockstepChecker.expect_fault` confirms the
golden model faults at the same PC with the same fault class.
"""

from dataclasses import dataclass, field
from typing import Any

from repro.check.golden import GoldenFault, GoldenModel

MASK32 = 0xFFFFFFFF


@dataclass
class Divergence:
    """One architectural disagreement between pipeline and golden model."""

    cycle: int
    warp: int
    lane: int
    thread: int
    pc: int
    instr: Any
    field: str
    pipeline_value: Any
    golden_value: Any
    source_line: str = ""
    context: list = field(default_factory=list)

    def render(self):
        from repro.isa.disasm import format_instr
        lines = [
            "architectural divergence at pc=0x%08x (cycle %d, warp %d, "
            "lane %d, thread %d)" % (self.pc, self.cycle, self.warp,
                                     self.lane, self.thread),
            "  instruction: %s" % (format_instr(self.instr)
                                   if self.instr is not None else "<none>"),
        ]
        if self.source_line:
            lines.append("  source:      %s" % self.source_line)
        lines.append("  field:       %s" % self.field)
        lines.append("  pipeline:    %s" % _fmt(self.pipeline_value))
        lines.append("  golden:      %s" % _fmt(self.golden_value))
        lines.extend("  %s" % line for line in self.context)
        return "\n".join(lines)


def _fmt(value):
    if isinstance(value, bool) or not isinstance(value, int):
        return repr(value)
    return "0x%x (%d)" % (value & ((1 << 64) - 1), value)


class DivergenceError(AssertionError):
    """Raised on the first pipeline/golden-model disagreement."""

    def __init__(self, divergence):
        super().__init__(divergence.render())
        self.divergence = divergence


class LockstepChecker:
    """Probe-bus sink that drives a golden model in lockstep with the SM.

    Attach with ``repro.obs.attach(sm, checker)``; every kernel launched
    on the SM while attached is cross-checked.  Raises
    :class:`DivergenceError` from inside the run at the first mismatch.
    """

    def __init__(self):
        self.golden = None
        self.launches = 0
        self.retired = 0         # retire events checked
        self.instructions = 0    # per-lane instructions stepped
        self._sm = None
        self._aborted = False

    # -- probe handlers ---------------------------------------------------

    def on_launch(self, sm, program):
        """Snapshot the freshly-launched SM into a new golden model."""
        self._sm = sm
        self._aborted = False
        self.launches += 1
        cfg = sm.cfg
        cheri = cfg.enable_cheri
        golden = GoldenModel(program, cfg.num_threads, cheri)
        lanes = cfg.num_lanes
        for warp in sm.warps:
            base = warp.index * lanes
            for lane in range(lanes):
                golden.pc[base + lane] = warp.pcs[lane]
                golden.halted[base + lane] = warp.halted[lane]
                if cheri:
                    golden.pcc[base + lane] = warp.pcc_meta[lane]
        for w in range(cfg.num_warps):
            base = w * lanes
            for reg in range(1, 32):
                values = sm.gp.peek(w, reg)
                metas = sm.meta.peek(w, reg) if cheri else None
                for lane in range(lanes):
                    golden.gp[base + lane][reg] = values[lane]
                    if cheri:
                        golden.meta[base + lane][reg] = metas[lane]
        golden.memory.words.update(sm.memory._words)
        golden.memory.tags.update(sm.memory._tags)
        self.golden = golden

    def on_retire(self, cycle, warp, pc, instr, lanes):
        golden = self.golden
        if golden is None:
            return
        sm = self._sm
        num_lanes = sm.cfg.num_lanes
        cheri = golden.cheri
        base = warp.index * num_lanes

        # Step the golden model thread-by-thread in lane order (the order
        # the pipeline applies per-lane memory effects in).
        for lane in lanes:
            thread = base + lane
            if golden.pc[thread] != pc:
                self._diverge(cycle, warp.index, lane, thread, pc, instr,
                              "pc (control flow before this instruction)",
                              pc, golden.pc[thread])
            try:
                golden.step(thread)
            except GoldenFault as fault:
                self._diverge(cycle, warp.index, lane, thread, pc, instr,
                              "fault", "(pipeline retired normally)",
                              "%s" % fault)
            self.instructions += 1
        self.retired += 1

        # Diff the architectural effects of this instruction.
        rd = instr.rd
        values = metas = None
        if rd:
            values = sm.gp.peek(warp.index, rd)
            if cheri:
                metas = sm.meta.peek(warp.index, rd)
        for lane in lanes:
            thread = base + lane
            if rd:
                if values[lane] != golden.gp[thread][rd]:
                    self._diverge(cycle, warp.index, lane, thread, pc, instr,
                                  "x%d" % rd, values[lane],
                                  golden.gp[thread][rd])
                if cheri and metas[lane] != golden.meta[thread][rd]:
                    self._diverge(cycle, warp.index, lane, thread, pc, instr,
                                  "meta(x%d)" % rd, metas[lane],
                                  golden.meta[thread][rd])
            if warp.pcs[lane] != golden.pc[thread]:
                self._diverge(cycle, warp.index, lane, thread, pc, instr,
                              "next pc", warp.pcs[lane], golden.pc[thread])
            if warp.halted[lane] != golden.halted[thread]:
                self._diverge(cycle, warp.index, lane, thread, pc, instr,
                              "halted", warp.halted[lane],
                              golden.halted[thread])
            if cheri and warp.pcc_meta[lane] != golden.pcc[thread]:
                self._diverge(cycle, warp.index, lane, thread, pc, instr,
                              "pcc", warp.pcc_meta[lane],
                              golden.pcc[thread])

    def on_finish(self, sm):
        """Full final sweep at detach time (skipped after an abort)."""
        if self.golden is None or self._aborted:
            return
        self.verify_final()

    # -- fault lockstep ---------------------------------------------------

    def expect_fault(self, cause):
        """Confirm the golden model faults exactly like the pipeline did.

        ``cause`` is the exception carried by the pipeline's
        ``KernelAbort``.  Raises :class:`DivergenceError` when the golden
        model retires normally or faults differently.  Marks the run
        aborted so the final sweep (meaningless on partial state) is
        skipped.
        """
        self._aborted = True
        golden = self.golden
        kind = type(cause).__name__
        pc = getattr(cause, "pc", None)
        thread = getattr(cause, "thread", None)
        if thread is None:
            # e.g. an unimplemented-op trap reports only the PC: fault
            # whichever live thread sits at it.
            candidates = [t for t in range(golden.num_threads)
                          if not golden.halted[t] and golden.pc[t] == pc]
            thread = candidates[0] if candidates else 0
        warp_lane = divmod(thread, self._sm.cfg.num_lanes)
        instr = None
        index = (pc or 0) >> 2
        if 0 <= index < len(golden.program):
            instr = golden.program[index]
        try:
            golden.step(thread)
        except GoldenFault as fault:
            if fault.kind != kind or (pc is not None and fault.pc != pc):
                self._diverge(0, warp_lane[0], warp_lane[1], thread,
                              pc or 0, instr, "fault",
                              "%s at pc=%s" % (kind, _fmt(pc or 0)),
                              "%s at pc=%s" % (fault.kind,
                                               _fmt(fault.pc or 0)))
            return fault
        self._diverge(0, warp_lane[0], warp_lane[1], thread, pc or 0,
                      instr, "fault", "%s: %s" % (kind, cause),
                      "(golden model retired normally)")

    # -- final sweep -------------------------------------------------------

    def verify_final(self):
        """Compare every register, PC, halt flag and the whole memory."""
        sm = self._sm
        golden = self.golden
        cfg = sm.cfg
        lanes = cfg.num_lanes
        cheri = golden.cheri
        for warp in sm.warps:
            base = warp.index * lanes
            for lane in range(lanes):
                thread = base + lane
                if warp.pcs[lane] != golden.pc[thread]:
                    self._diverge(-1, warp.index, lane, thread,
                                  warp.pcs[lane], None, "final pc",
                                  warp.pcs[lane], golden.pc[thread])
                if warp.halted[lane] != golden.halted[thread]:
                    self._diverge(-1, warp.index, lane, thread,
                                  warp.pcs[lane], None, "final halted",
                                  warp.halted[lane], golden.halted[thread])
        for w in range(cfg.num_warps):
            base = w * lanes
            for reg in range(1, 32):
                values = sm.gp.peek(w, reg)
                metas = sm.meta.peek(w, reg) if cheri else None
                for lane in range(lanes):
                    thread = base + lane
                    if values[lane] != golden.gp[thread][reg]:
                        self._diverge(-1, w, lane, thread, 0, None,
                                      "final x%d" % reg, values[lane],
                                      golden.gp[thread][reg])
                    if cheri and metas[lane] != golden.meta[thread][reg]:
                        self._diverge(-1, w, lane, thread, 0, None,
                                      "final meta(x%d)" % reg, metas[lane],
                                      golden.meta[thread][reg])
        mem = sm.memory
        if dict(mem._words) != golden.memory.words:
            diffs = _dict_diff(mem._words, golden.memory.words)
            self._diverge(-1, 0, 0, 0, 0, None, "final memory words",
                          diffs[0], diffs[1], context=diffs[2])
        if set(mem._tags) != golden.memory.tags:
            only_pipe = sorted(set(mem._tags) - golden.memory.tags)[:8]
            only_gold = sorted(golden.memory.tags - set(mem._tags))[:8]
            self._diverge(-1, 0, 0, 0, 0, None, "final memory tags",
                          "extra tagged words %s" % only_pipe,
                          "extra tagged words %s" % only_gold)

    # -- helpers -----------------------------------------------------------

    def _source_line(self, instr):
        info = getattr(self._sm, "kernel_info", None)
        if info is None or instr is None or not getattr(instr, "line", None):
            return ""
        try:
            return info.line_text(instr.line)
        except Exception:
            return ""

    def _diverge(self, cycle, warp, lane, thread, pc, instr, what,
                 pipeline_value, golden_value, context=()):
        raise DivergenceError(Divergence(
            cycle=cycle, warp=warp, lane=lane, thread=thread, pc=pc,
            instr=instr, field=what, pipeline_value=pipeline_value,
            golden_value=golden_value,
            source_line=self._source_line(instr),
            context=list(context)))


def _dict_diff(pipe_words, golden_words, limit=8):
    """Summarise the first differing memory words for the report."""
    keys = sorted(set(pipe_words) | set(golden_words))
    rows = []
    for key in keys:
        a = pipe_words.get(key, 0)
        b = golden_words.get(key, 0)
        if a != b:
            rows.append("word @0x%08x: pipeline=0x%08x golden=0x%08x"
                        % (key << 2, a, b))
            if len(rows) >= limit:
                break
    head = rows[0] if rows else "(no differing words?)"
    return ("%d differing words; first: %s" % (len(rows), head),
            "(see context)", rows)


# ---------------------------------------------------------------------------
# Convenience drivers
# ---------------------------------------------------------------------------

def check_benchmark(name, config_name="cheri_opt", scale=1, num_warps=4,
                    num_lanes=4, **overrides):
    """Run one benchmark with a lockstep checker attached.

    Returns ``(stats, checker)``; raises :class:`DivergenceError` at the
    first architectural mismatch.  The benchmark's own output self-checks
    run as usual.  Extra ``overrides`` are :class:`SMConfig` field
    overrides on top of the (small, lockstep-friendly) geometry.
    """
    from repro.benchsuite import ALL_BENCHMARKS
    from repro.eval import runner
    from repro.nocl import NoCLRuntime
    from repro.obs import attach, detach

    mode, config = runner.config_for(config_name, num_warps=num_warps,
                                     num_lanes=num_lanes, **overrides)
    rt = NoCLRuntime(mode, config=config)
    checker = LockstepChecker()
    attach(rt.sm, checker)
    try:
        stats = ALL_BENCHMARKS[name].run(rt, scale=scale)
    except BaseException:
        # The run died mid-kernel: the final sweep would compare partial
        # state and mask the original error.
        checker._aborted = True
        raise
    finally:
        detach(rt.sm)  # emits finish -> final sweep (unless aborted)
    return stats, checker


def verified_run(name, config_name="cheri_opt", scale=1, num_warps=4,
                 num_lanes=4, **overrides):
    """Service hook: one benchmark run under full golden-model lockstep.

    Used by ``repro.serve`` when a job is submitted with ``verify``:
    the simulation only counts as done if every retired instruction's
    architectural effects matched the golden model.  Returns
    ``(stats, lockstep)`` where ``lockstep`` is a JSON-able summary of
    the cross-check (launches, retire events, per-lane instructions,
    wall seconds); raises :class:`DivergenceError` on any mismatch.
    """
    import time
    start = time.perf_counter()
    stats, checker = check_benchmark(name, config_name, scale=scale,
                                     num_warps=num_warps,
                                     num_lanes=num_lanes, **overrides)
    return stats, {
        "launches": checker.launches,
        "retired": checker.retired,
        "instructions": checker.instructions,
        "wall_seconds": round(time.perf_counter() - start, 6),
    }


def lockstep_case(name, config_name, scale=1, backend=None, opt=0):
    """One sweep cell, picklable for process pools.

    Returns ``(name, config_name, ok, message, wall_seconds)``; a
    divergence is reported in ``message`` rather than raised so a
    parallel sweep can keep going and report every failing cell.
    """
    import time
    start = time.perf_counter()
    overrides = {"opt": opt}
    if backend is not None:
        overrides["backend"] = backend
    try:
        _, checker = check_benchmark(name, config_name, scale=scale,
                                     **overrides)
    except AssertionError as exc:
        return (name, config_name, False, str(exc),
                time.perf_counter() - start)
    message = ("lockstep ok (%d retire events, %d instructions)"
               % (checker.retired, checker.instructions))
    return (name, config_name, True, message, time.perf_counter() - start)


def run_lockstep_sweep(names, configs, scale=1, jobs=None, log=None,
                       backend=None, opt=0):
    """The benchmark × config lockstep sweep, optionally across processes.

    ``jobs=None``/``1`` runs serially in-process; ``jobs=N`` fans the
    cells out over ``N`` worker processes (the sweep is embarrassingly
    parallel — each cell is an independent simulation).  Per-case wall
    time is always reported.  Returns the number of diverged cells.
    """
    import time
    from concurrent.futures import ProcessPoolExecutor

    emit = log or (lambda text: None)
    cells = [(name, config_name) for name in names
             for config_name in configs]
    start = time.perf_counter()
    if jobs is None or jobs <= 1 or len(cells) <= 1:
        outcomes = [lockstep_case(name, config_name, scale, backend, opt)
                    for name, config_name in cells]
    else:
        with ProcessPoolExecutor(max_workers=min(jobs, len(cells))) as pool:
            futures = [pool.submit(lockstep_case, name, config_name, scale,
                                   backend, opt)
                       for name, config_name in cells]
            outcomes = [future.result() for future in futures]
    failures = 0
    for name, config_name, ok, message, wall in outcomes:
        if ok:
            emit("%s [%s] %s  (%.2fs)" % (name, config_name, message, wall))
        else:
            failures += 1
            emit("%s [%s] DIVERGED (%.2fs):\n%s"
                 % (name, config_name, wall, message))
    emit("%d cell(s) in %.2fs wall%s"
         % (len(cells), time.perf_counter() - start,
            ", %d worker processes" % jobs if jobs and jobs > 1 else ""))
    return failures


def check_program(program, config, init_regs=None, init_cap_regs=None,
                  kernel_pcc=None, entry_pc=0, max_cycles=2_000_000):
    """Run a raw instruction sequence on a fresh SM under lockstep.

    Returns ``(stats, checker, fault)``.  ``fault`` is the abort cause
    when the kernel faulted *and* the golden model faulted identically
    (an explained termination: stats is then None); any disagreement
    raises :class:`DivergenceError`.
    """
    from repro.simt.pipeline import KernelAbort, StreamingMultiprocessor
    from repro.obs import attach, detach

    sm = StreamingMultiprocessor(config)
    checker = LockstepChecker()
    attach(sm, checker)
    try:
        stats = sm.launch(program, init_regs=init_regs,
                          init_cap_regs=init_cap_regs, entry_pc=entry_pc,
                          kernel_pcc=kernel_pcc, max_cycles=max_cycles)
        fault = None
    except KernelAbort as abort:
        if not isinstance(abort.cause, Exception):
            checker._aborted = True
            raise  # deadlock/cycle-limit: not a fault-lockstep case
        checker.expect_fault(abort.cause)
        fault = abort.cause
        stats = None
    except Exception:
        checker._aborted = True
        raise
    finally:
        detach(sm)
    return stats, checker, fault
