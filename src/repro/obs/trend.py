"""Longitudinal performance trends: BENCH histories + manifest chains.

``repro obs report`` aggregates the two provenance trails this repo
already leaves behind —

- ``BENCH_runner.json``: the appended wall-clock trajectory written by
  ``scripts/bench_runner.py`` across commits, and
- run manifests (``repro.obs.manifest``) captured at different
  revisions —

into per-group trend tables with regression flags, so a perf-sensitive
change can be gated in CI against the checked-in history rather than a
single ad-hoc A/B diff.

Wall-clock numbers are only comparable when measured on the same
machine under the same workload shape, so BENCH records are grouped by
``(config, scale, backend, host)`` before any two are compared — a
record from a different host opens a new group and can never
false-flag.  Within a group each metric is compared against the
*previous comparable record* using the same relative threshold as
``repro diff`` (:data:`repro.obs.manifest.DEFAULT_THRESHOLD` by
default, though wall-clock gating typically wants a looser one), with
an absolute noise floor so microsecond-scale cache-hit timings cannot
trip the gate.

Manifest chains reuse :func:`repro.obs.manifest.diff_manifests`
pairwise over a chronological sequence of manifest files.
"""

import json
import os

from repro.obs.manifest import (
    DEFAULT_THRESHOLD,
    diff_manifests,
    load_manifest,
)

#: Higher-is-worse wall-clock metrics tracked across BENCH records.
BENCH_METRICS = (
    "cold_serial_seconds",
    "cold_parallel_seconds",
    "warm_disk_seconds",
    "warm_memo_seconds",
    "first_launch_overhead_seconds",
)

#: Wall-clock readings below this many seconds are noise (cache-hit
#: paths time at single milliseconds); they are reported but never
#: flagged as regressions.
NOISE_FLOOR_SECONDS = 0.1

#: Default relative threshold for wall-clock trends.  Looser than the
#: manifest default (2%): wall-clock on a shared machine jitters far
#: more than cycle counts do.
BENCH_THRESHOLD = 0.10


def load_bench_history(path):
    """The BENCH_runner.json record list (chronological, oldest first)."""
    with open(path) as stream:
        history = json.load(stream)
    if not isinstance(history, list):
        raise ValueError("%s is not a BENCH history (expected a list)"
                         % path)
    return history


def host_key(record):
    """The comparability key of where a record was measured.

    Records written before host provenance was stamped fall back to the
    bare ``cpu_count`` — the only host signal they carry — so the
    checked-in early history still forms one comparable group.
    """
    host = record.get("host") or {}
    if host:
        return "%s/%sc/py%s" % (host.get("cpu_model", "?"),
                                host.get("cpu_count", "?"),
                                host.get("python_version", "?"))
    return "unknown/%sc" % record.get("cpu_count", "?")


def group_key(record):
    """Records are only compared within one of these groups."""
    return (record.get("config", "?"), record.get("scale", 1),
            record.get("backend") or "", host_key(record))


def _label(record):
    return record.get("git_rev") or (record.get("label") or "?")[:12]


def bench_trends(history, metrics=BENCH_METRICS, threshold=BENCH_THRESHOLD,
                 noise_floor=NOISE_FLOOR_SECONDS, breakdown=False):
    """Trend rows over a BENCH history.

    Returns a list of row dicts — one per (group, metric) with at least
    one record — carrying the full value series plus the latest-vs-
    previous comparison: ``group``, ``metric``, ``series`` (list of
    ``(rev, value)``), ``old``, ``new``, ``delta``, ``ratio``,
    ``regressed``.  With ``breakdown`` per-benchmark cold-serial rows
    (``cold_serial_breakdown``) are included as
    ``cold_serial_seconds[<bench>]``.
    """
    groups = {}
    for record in history:
        groups.setdefault(group_key(record), []).append(record)
    rows = []
    for key in sorted(groups, key=str):
        records = groups[key]
        names = list(metrics)
        if breakdown:
            benches = set()
            for record in records:
                benches.update(record.get("cold_serial_breakdown") or ())
            names += ["cold_serial_seconds[%s]" % bench
                      for bench in sorted(benches)]
        for metric in names:
            series = []
            for record in records:
                if metric.endswith("]"):
                    _base, bench = metric[:-1].split("[", 1)
                    value = (record.get("cold_serial_breakdown") or {}) \
                        .get(bench)
                else:
                    value = record.get(metric)
                if isinstance(value, (int, float)):
                    series.append((_label(record), float(value)))
            if not series:
                continue
            row = {"group": key, "metric": metric, "series": series,
                   "old": None, "new": series[-1][1], "delta": None,
                   "ratio": None, "regressed": False}
            if len(series) >= 2:
                old = series[-2][1]
                new = series[-1][1]
                row["old"] = old
                row["delta"] = round(new - old, 6)
                row["ratio"] = (new / old) if old else None
                row["regressed"] = bool(
                    new - old > 0
                    and new >= noise_floor
                    and (old == 0 or row["ratio"] > 1.0 + threshold))
            rows.append(row)
    return rows


def manifest_trends(paths, threshold=DEFAULT_THRESHOLD):
    """Pairwise chained diffs over a chronological manifest sequence.

    Returns ``(steps, rows)``: ``steps`` is a list of
    ``(old_path, new_path, diff_rows)`` from
    :func:`repro.obs.manifest.diff_manifests`; ``rows`` flattens every
    regressed entry with the step labels attached.
    """
    manifests = [(path, load_manifest(path)) for path in paths]
    steps = []
    regressed = []
    for (old_path, old), (new_path, new) in zip(manifests, manifests[1:]):
        diff = diff_manifests(old, new, threshold=threshold)
        steps.append((old_path, new_path, diff))
        for row in diff:
            if row["regressed"]:
                entry = dict(row)
                entry["old_manifest"] = os.path.basename(old_path)
                entry["new_manifest"] = os.path.basename(new_path)
                regressed.append(entry)
    return steps, regressed


def manifest_failure_alerts(paths):
    """Flag manifests whose runner counters recorded manifest-write
    failures: some earlier suite invocation in that process lost its
    provenance (the write was logged and counted, but no file exists
    to chain), so the manifest trail has a gap."""
    lines = []
    for path in paths:
        try:
            manifest = load_manifest(path)
        except Exception:
            continue
        counters = manifest.get("runner_counters") or {}
        failures = counters.get("manifest_write_failures", 0)
        if failures:
            lines.append(
                "%s: %d manifest write failure(s) recorded in this "
                "process — provenance trail has gaps"
                % (os.path.basename(path), failures))
    return lines


def _fmt_group(key):
    config, scale, backend, host = key
    backend = backend or "default"
    return "%s s%s %s @ %s" % (config, scale, backend, host)


def _fmt_value(value):
    if value is None:
        return "-"
    return ("%.3f" % value).rstrip("0").rstrip(".") or "0"


def render_bench_trends(rows):
    """The trend rows as a human-readable report."""
    lines = []
    regressions = [row for row in rows if row["regressed"]]
    last_group = None
    for row in rows:
        if row["group"] != last_group:
            last_group = row["group"]
            lines.append("")
            lines.append(_fmt_group(row["group"]))
            lines.append("  %-38s %-34s %10s" % ("metric", "trend",
                                                 "change"))
        trail = " -> ".join(_fmt_value(value)
                            for _rev, value in row["series"][-5:])
        if row["ratio"] is not None:
            change = "%+.1f%%" % (100.0 * (row["ratio"] - 1.0))
        elif row["delta"]:
            change = "+new"
        else:
            change = "="
        lines.append("  %-38s %-34s %10s%s" % (
            row["metric"], trail, change,
            "  << REGRESSED" if row["regressed"] else ""))
    lines.append("")
    lines.append("%d wall-clock metric(s) regressed beyond threshold"
                 % len(regressions) if regressions
                 else "no wall-clock regressions beyond threshold")
    return "\n".join(lines).lstrip("\n")


def render_manifest_trends(steps, regressed):
    lines = []
    for old_path, new_path, diff in steps:
        flagged = sum(1 for row in diff if row["regressed"])
        lines.append("%s -> %s: %d regression(s)"
                     % (os.path.basename(old_path),
                        os.path.basename(new_path), flagged))
    for row in regressed:
        lines.append("  %s/%s %s: %s -> %s"
                     % (row["new_manifest"], row["benchmark"],
                        row["metric"], row["old"], row["new"]))
    if not steps:
        lines.append("(fewer than two manifests: nothing to chain)")
    return "\n".join(lines)


def trend_report(bench_path=None, manifest_paths=(), threshold=None,
                 breakdown=False):
    """The combined trend report; returns ``(text, regressed_count)``.

    ``threshold`` overrides both the wall-clock and the manifest
    threshold when given; otherwise each side uses its own default.
    """
    sections = []
    regressed = 0
    if bench_path and os.path.exists(bench_path):
        rows = bench_trends(
            load_bench_history(bench_path),
            threshold=BENCH_THRESHOLD if threshold is None else threshold,
            breakdown=breakdown)
        regressed += sum(1 for row in rows if row["regressed"])
        sections.append("== BENCH trajectory (%s) ==" % bench_path)
        sections.append(render_bench_trends(rows))
    elif bench_path:
        sections.append("== BENCH trajectory ==")
        sections.append("(no history at %s)" % bench_path)
    if len(manifest_paths) >= 2:
        steps, rows = manifest_trends(
            manifest_paths,
            threshold=DEFAULT_THRESHOLD if threshold is None
            else threshold)
        regressed += len(rows)
        sections.append("")
        sections.append("== manifest chain ==")
        sections.append(render_manifest_trends(steps, rows))
    if manifest_paths:
        alerts = manifest_failure_alerts(manifest_paths)
        if alerts:
            sections.append("")
            sections.append("== manifest write failures ==")
            sections.extend(alerts)
    return "\n".join(sections), regressed
