"""Observability: probe bus, profilers, timeline export, run manifests.

Everything here is opt-in side-band instrumentation.  With no probes
attached (``sm.probes is None``, the default) the simulator's hot path
and its statistics are bit-identical to an uninstrumented build; see
``repro/obs/probes.py`` for the event catalogue and the cycle-accounting
invariant the profilers rely on.
"""

from repro.obs.manifest import (
    build_manifest,
    diff_manifests,
    load_manifest,
    render_diff,
    write_manifest,
)
from repro.obs.perfetto import TimelineCollector, validate_trace
from repro.obs.probes import EVENTS, ProbeBus, attach, detach
from repro.obs.profile import STALL_CAUSES, ProfileCollector, classify_op

__all__ = [
    "EVENTS", "ProbeBus", "attach", "detach",
    "ProfileCollector", "STALL_CAUSES", "classify_op",
    "TimelineCollector", "validate_trace",
    "build_manifest", "write_manifest", "load_manifest",
    "diff_manifests", "render_diff",
]
