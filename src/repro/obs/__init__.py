"""Observability: probe bus, profilers, timeline export, run manifests.

Everything here is opt-in side-band instrumentation.  With no probes
attached (``sm.probes is None``, the default) the simulator's hot path
and its statistics are bit-identical to an uninstrumented build; see
``repro/obs/probes.py`` for the event catalogue and the cycle-accounting
invariant the profilers rely on.
"""

from repro.obs.boundscheck import BoundsCheckCounter
from repro.obs.manifest import (
    build_manifest,
    diff_manifests,
    load_manifest,
    render_diff,
    write_manifest,
)
from repro.obs.perfetto import (
    TimelineCollector,
    spans_to_trace_events,
    validate_trace,
    write_service_trace,
)
from repro.obs.probes import EVENTS, ProbeBus, attach, detach
from repro.obs.profile import STALL_CAUSES, ProfileCollector, classify_op
from repro.obs.telemetry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Span,
    Tracer,
    active_tracer,
    install,
)
from repro.obs.trend import bench_trends, manifest_trends, trend_report

__all__ = [
    "EVENTS", "ProbeBus", "attach", "detach",
    "BoundsCheckCounter",
    "ProfileCollector", "STALL_CAUSES", "classify_op",
    "TimelineCollector", "validate_trace",
    "spans_to_trace_events", "write_service_trace",
    "build_manifest", "write_manifest", "load_manifest",
    "diff_manifests", "render_diff",
    "Counter", "Gauge", "Histogram", "MetricsRegistry",
    "Span", "Tracer", "active_tracer", "install",
    "bench_trends", "manifest_trends", "trend_report",
]
