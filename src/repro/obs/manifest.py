"""Structured run manifests: what ran, under what, and what it measured.

Every :func:`repro.eval.runner.run_suite` call emits one JSON manifest
(``results/manifests/<config>_s<scale>.json`` unless redirected with the
``REPRO_MANIFEST_DIR`` environment variable).  A manifest captures the
full per-benchmark statistics plus enough provenance to interpret them
later: configuration name and mode, SM geometry, scale, per-run cache
source (memo / disk / fresh simulation), the simulator-source digest the
disk cache was keyed on, the git revision, and wall-clock cost.

``python -m repro diff A.json B.json`` compares two manifests metric by
metric and exits non-zero when any *higher-is-worse* metric regressed
beyond the threshold — the intended guard for performance-sensitive
changes (pair it with the pinned ``BENCH_runner.json`` numbers).
"""

import json
import os
import time

#: Manifest schema version; bump on incompatible layout changes.
SCHEMA = 2

#: Metrics where a larger value is a regression.  Everything else in the
#: stats block is informational (e.g. ``instrs_issued`` legitimately
#: differs across configs; ``ipc`` is higher-is-better).
REGRESSION_METRICS = (
    "cycles",
    "dram_read_bytes",
    "dram_write_bytes",
    "dram_spill_bytes",
    "dram_tag_bytes",
    "dram_txns",
    "gp_spills",
    "meta_spills",
    "stall_shared_vrf",
    "stall_csc_operand",
    "stall_bank_conflict",
    "stall_atomic_serial",
)

#: Default relative-regression tolerance for :func:`diff_manifests`.
DEFAULT_THRESHOLD = 0.02


def _git_revision(root):
    """Best-effort current git revision without shelling out."""
    try:
        head_path = os.path.join(root, ".git", "HEAD")
        with open(head_path) as stream:
            head = stream.read().strip()
        if head.startswith("ref: "):
            ref = head[5:]
            ref_path = os.path.join(root, ".git", *ref.split("/"))
            if os.path.exists(ref_path):
                with open(ref_path) as stream:
                    return stream.read().strip()
            packed = os.path.join(root, ".git", "packed-refs")
            with open(packed) as stream:
                for line in stream:
                    if line.endswith(ref + "\n"):
                        return line.split()[0]
            return ""
        return head
    except OSError:
        return ""


def manifest_dir():
    """Where manifests land (``results/manifests`` unless overridden)."""
    override = os.environ.get("REPRO_MANIFEST_DIR")
    if override:
        return override
    root = os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))))
    return os.path.join(root, "results", "manifests")


def default_path(config_name, scale, opt=0):
    """Stable per-(config, scale, opt) filename, so reruns overwrite in
    place — and an ``-O1`` sweep never clobbers the ``-O0`` record."""
    suffix = "_O%d" % opt if opt else ""
    return os.path.join(manifest_dir(),
                        "%s_s%d%s.json" % (config_name, scale, suffix))


def build_manifest(results, config_name, scale, wall_seconds,
                   sources_digest="", runner_counters=None):
    """Assemble the manifest dict for one ``run_suite`` invocation.

    ``results`` maps benchmark name -> :class:`RunResult`.  The SM
    geometry is lifted from the first result's config (identical across
    the suite by construction).
    """
    from dataclasses import asdict
    benchmarks = {}
    mode = None
    geometry = {}
    for name, result in results.items():
        if mode is None:
            mode = result.mode
            geometry = {"num_warps": result.config.num_warps,
                        "num_lanes": result.config.num_lanes}
        meta = result.meta
        benchmarks[name] = {
            "stats": result.stats.as_dict(),
            "cache_source": meta.source if meta else "memo",
            "sim_seconds": round(meta.wall_seconds, 6) if meta else 0.0,
        }
        # Additive: per-benchmark JIT-tier counters when the run executed
        # on the jit backend (``getattr`` tolerates RunMeta objects
        # unpickled from pre-JIT disk caches).
        jit = getattr(meta, "jit", None) if meta else None
        if jit is not None:
            benchmarks[name]["jit"] = jit
        # Additive: per-kernel optimizer pass reports when the run was
        # compiled at -O1 (absent on -O0 runs and pre-opt disk caches).
        opt_reports = getattr(meta, "opt", None) if meta else None
        if opt_reports is not None:
            benchmarks[name]["opt"] = opt_reports
    first = next(iter(results.values()), None)
    repo_root = os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))))
    return {
        "schema": SCHEMA,
        "generator": "repro.eval.runner",
        "created_unix": round(time.time(), 3),
        "config": config_name,
        "mode": mode or "",
        "scale": scale,
        "opt": getattr(first.config, "opt", 0) if first else 0,
        "backend": first.config.backend if first else "",
        "geometry": geometry,
        "sm_config": dict(sorted(asdict(first.config).items())) if first
        else {},
        "wall_seconds": round(wall_seconds, 6),
        "sources_digest": sources_digest,
        "git_revision": _git_revision(repo_root),
        "runner_counters": dict(runner_counters or {}),
        "benchmarks": benchmarks,
    }


def write_manifest(manifest, path=None):
    """Write ``manifest`` as JSON (atomic rename); returns the path.

    Never raises on filesystem trouble — a read-only checkout must not
    break experiments — but returns ``None`` in that case.
    """
    if path is None:
        path = default_path(manifest["config"], manifest["scale"],
                            manifest.get("opt", 0))
    try:
        os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
        tmp = "%s.tmp.%d" % (path, os.getpid())
        with open(tmp, "w") as stream:
            json.dump(manifest, stream, indent=1, sort_keys=True)
            stream.write("\n")
        os.replace(tmp, path)
    except OSError:
        return None
    return path


def build_service_manifest(snapshot, jobs=None, telemetry=None):
    """Assemble a manifest for one ``repro serve`` session.

    ``snapshot`` is the server's metrics snapshot (queue depth, dedup and
    cache hits, worker utilization, latency percentiles); ``jobs`` an
    optional list of per-job summary dicts; ``telemetry`` an optional
    dict of sidecar artifact paths (metrics NDJSON, trace NDJSON,
    Perfetto service trace) written alongside at drain.  Written on
    drain so a service session leaves the same provenance trail a
    ``run_suite`` invocation does.
    """
    repo_root = os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))))
    manifest = {
        "schema": SCHEMA,
        "generator": "repro.serve",
        "created_unix": round(time.time(), 3),
        "git_revision": _git_revision(repo_root),
        "service": dict(snapshot),
        "jobs": list(jobs or []),
    }
    if telemetry:
        manifest["telemetry"] = dict(telemetry)
    return manifest


def write_service_manifest(snapshot, jobs=None, path=None, telemetry=None):
    """Write the service manifest (best-effort); returns path or None."""
    if path is None:
        path = os.path.join(manifest_dir(), "serve.json")
    return write_manifest(build_service_manifest(snapshot, jobs,
                                                 telemetry=telemetry),
                          path=path)


def load_manifest(path):
    with open(path) as stream:
        manifest = json.load(stream)
    if "benchmarks" not in manifest:
        raise ValueError("%s is not a run manifest (no benchmarks key)"
                         % path)
    return manifest


def manifest_backend(manifest):
    """The execution backend a manifest was produced with.

    Top-level ``backend`` key on current manifests; fished out of the
    ``sm_config`` dump for older ones.  Empty string when unknown.
    """
    return (manifest.get("backend")
            or manifest.get("sm_config", {}).get("backend", ""))


def manifest_opt(manifest):
    """The compiler opt level a manifest's suite ran at (0 when absent —
    every pre-opt manifest compiled the direct frontend output)."""
    return int(manifest.get("opt")
               or manifest.get("sm_config", {}).get("opt", 0) or 0)


def diff_manifests(old, new, threshold=DEFAULT_THRESHOLD,
                   metrics=REGRESSION_METRICS):
    """Per-benchmark, per-metric comparison of two manifests.

    Returns a list of row dicts with keys ``benchmark``, ``metric``,
    ``old``, ``new``, ``delta``, ``ratio`` and ``regressed`` (True when
    the metric is higher-is-worse and grew by more than ``threshold``
    relative — or appeared from zero).  Benchmarks present in only one
    manifest are reported with metric ``<missing>``.  A metric key
    present in only one manifest (schema drift: a counter added or
    removed between versions) yields an informational row with a
    ``note`` and is never a regression.  A genuinely zero baseline has
    no meaningful ratio (``ratio`` is None, never infinite): growth from
    zero still regresses, rendered as ``+new``.  When the two manifests
    were produced by different execution backends, an informational
    ``<suite>``/``backend`` row flags the cross-backend comparison.
    """
    rows = []
    old_backend = manifest_backend(old)
    new_backend = manifest_backend(new)
    if old_backend != new_backend:
        # Backends are bit-identical by construction, so metric changes
        # across them point at a backend bug, not a workload change —
        # worth a loud informational row up front.
        rows.append({"benchmark": "<suite>", "metric": "backend",
                     "old": old_backend or "?", "new": new_backend or "?",
                     "delta": None, "ratio": None, "regressed": False,
                     "note": "cross-backend comparison"})
    old_opt = manifest_opt(old)
    new_opt = manifest_opt(new)
    if old_opt != new_opt:
        # Unlike backends, opt levels legitimately change the metrics —
        # that is their point — so flag the comparison rather than let a
        # reader mistake an -O1 improvement for a workload change.
        rows.append({"benchmark": "<suite>", "metric": "opt",
                     "old": "O%d" % old_opt, "new": "O%d" % new_opt,
                     "delta": None, "ratio": None, "regressed": False,
                     "note": "cross-opt-level comparison"})
    old_benches = old.get("benchmarks", {})
    new_benches = new.get("benchmarks", {})
    for name in sorted(set(old_benches) | set(new_benches)):
        if name not in new_benches or name not in old_benches:
            rows.append({"benchmark": name, "metric": "<missing>",
                         "old": name in old_benches,
                         "new": name in new_benches,
                         "delta": None, "ratio": None, "regressed": True})
            continue
        old_stats = old_benches[name].get("stats", {})
        new_stats = new_benches[name].get("stats", {})
        for metric in metrics:
            in_old = metric in old_stats
            in_new = metric in new_stats
            if not in_old and not in_new:
                continue
            if in_old != in_new:
                rows.append({"benchmark": name, "metric": metric,
                             "old": old_stats.get(metric),
                             "new": new_stats.get(metric),
                             "delta": None, "ratio": None,
                             "regressed": False,
                             "note": "only in %s"
                                     % ("old" if in_old else "new")})
                continue
            old_value = old_stats[metric]
            new_value = new_stats[metric]
            delta = new_value - old_value
            ratio = (new_value / old_value) if old_value else None
            regressed = (delta > 0 and
                         (old_value == 0 or ratio > 1.0 + threshold))
            rows.append({"benchmark": name, "metric": metric,
                         "old": old_value, "new": new_value,
                         "delta": delta, "ratio": ratio,
                         "regressed": regressed})
    return rows


def render_diff(rows, old_label="A", new_label="B", verbose=False):
    """Human-readable diff table; regressions always shown, unchanged
    metrics only with ``verbose``."""
    lines = []
    shown = [row for row in rows
             if verbose or row["regressed"] or row["delta"]
             or row.get("note")]
    regressions = [row for row in rows if row["regressed"]]
    lines.append("%-12s %-22s %14s %14s %10s" % (
        "benchmark", "metric", old_label, new_label, "change"))
    if not shown:
        lines.append("  (no differences in tracked metrics)")
    for row in shown:
        if row["metric"] == "<missing>":
            lines.append("%-12s %-22s %14s %14s %10s" % (
                row["benchmark"], row["metric"],
                "present" if row["old"] else "-",
                "present" if row["new"] else "-", "!!"))
            continue
        if row.get("note"):
            lines.append("%-12s %-22s %14s %14s %10s" % (
                row["benchmark"], row["metric"],
                "-" if row["old"] is None else row["old"],
                "-" if row["new"] is None else row["new"],
                "(%s)" % row["note"]))
            continue
        if row["ratio"] is None:
            change = "+new" if row["delta"] else "="
        else:
            change = "%+.2f%%" % (100.0 * (row["ratio"] - 1.0))
        lines.append("%-12s %-22s %14d %14d %10s%s" % (
            row["benchmark"], row["metric"], row["old"], row["new"],
            change, "  << REGRESSED" if row["regressed"] else ""))
    lines.append("")
    lines.append("%d metric(s) regressed beyond threshold"
                 % len(regressions) if regressions
                 else "no regressions beyond threshold")
    return "\n".join(lines)
