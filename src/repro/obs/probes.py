"""The probe bus: zero-overhead-when-off instrumentation events.

The :class:`StreamingMultiprocessor` owns an optional ``probes`` slot.
When it is ``None`` (the default) the pipeline's hot path is untouched —
every hook site is a single ``self.probes is not None`` check — and the
simulated statistics are bit-identical either way (pinned by
``tests/eval/test_equivalence.py``).

When a :class:`ProbeBus` is attached, the pipeline publishes a small set
of cycle-stamped events and the bus fans each one out to the sinks that
declared a handler for it:

==========  =============================================================
event       handler signature on the sink
==========  =============================================================
launch      ``on_launch(sm, program)`` — a kernel starts on the SM
issue       ``on_issue(cycle, warp, pc, instr, n_lanes, width,``
            ``completion, stalls)`` — one instruction issued; ``width``
            is the issue slots consumed, ``completion`` the cycle the
            warp resumes, ``stalls`` a 4-tuple of extra issue slots
            charged this issue: (shared_vrf, csc_operand, bank_conflict,
            atomic_serial)
retire      ``on_retire(cycle, warp, pc, instr, lanes)`` — the same
            instruction, after all architectural effects (registers,
            memory, PCs) have been applied; ``warp`` is the pipeline's
            warp object and ``lanes`` the executed lane list (shared —
            copy before storing).  This is the event the lockstep
            cross-checker (:mod:`repro.check`) keys on
idle        ``on_idle(cycle, until)`` — no warp was ready; the scheduler
            skipped from ``cycle`` to ``until``
mem_txn     ``on_mem_txn(cycle, line_addr, n_bytes, is_write, done)``
rf_spill    ``on_rf_spill(cycle, spills, reloads)`` — register-file
            compression traffic to DRAM
barrier     ``on_barrier(cycle, warp)``
sfu         ``on_sfu(cycle, n_lanes, cheri_op, done)``
finish      ``on_finish(sm)`` — emitted by :func:`detach`
==========  =============================================================

Cycle accounting invariant: within one kernel launch, the sum of
``width`` over all issue events plus the sum of ``until - cycle`` over
all idle events equals the cycles that launch added to ``stats.cycles``.
The profiler builds its "attributed cycles sum to total cycles" guarantee
on exactly this identity.
"""

#: Event names the bus can dispatch (a sink subscribes by defining
#: ``on_<event>``).
EVENTS = ("launch", "issue", "retire", "idle", "mem_txn", "rf_spill",
          "barrier", "sfu", "finish")


class ProbeBus:
    """Fans pipeline events out to attached sinks.

    Handler lists are materialised per event at :meth:`attach` time, so
    dispatch is a plain list walk with no ``hasattr`` checks on the
    per-issue path.
    """

    def __init__(self):
        self._sinks = []
        self._rebuild()

    def _rebuild(self):
        for event in EVENTS:
            handlers = [getattr(sink, "on_" + event) for sink in self._sinks
                        if callable(getattr(sink, "on_" + event, None))]
            setattr(self, "_" + event, handlers)

    def attach(self, sink):
        """Subscribe ``sink``'s ``on_*`` handlers; returns the sink."""
        self._sinks.append(sink)
        self._rebuild()
        return sink

    def detach_sink(self, sink):
        self._sinks.remove(sink)
        self._rebuild()

    @property
    def sinks(self):
        return tuple(self._sinks)

    # -- dispatch (called from the pipeline) ------------------------------

    def launch(self, sm, program):
        for fn in self._launch:
            fn(sm, program)

    def issue(self, cycle, warp, pc, instr, n_lanes, width, completion,
              stalls):
        for fn in self._issue:
            fn(cycle, warp, pc, instr, n_lanes, width, completion, stalls)

    def retire(self, cycle, warp, pc, instr, lanes):
        for fn in self._retire:
            fn(cycle, warp, pc, instr, lanes)

    def idle(self, cycle, until):
        for fn in self._idle:
            fn(cycle, until)

    def mem_txn(self, cycle, line_addr, n_bytes, is_write, done):
        for fn in self._mem_txn:
            fn(cycle, line_addr, n_bytes, is_write, done)

    def rf_spill(self, cycle, spills, reloads):
        for fn in self._rf_spill:
            fn(cycle, spills, reloads)

    def barrier(self, cycle, warp):
        for fn in self._barrier:
            fn(cycle, warp)

    def sfu(self, cycle, n_lanes, cheri_op, done):
        for fn in self._sfu:
            fn(cycle, n_lanes, cheri_op, done)

    def finish(self, sm):
        for fn in self._finish:
            fn(sm)


def attach(sm, *sinks):
    """Attach ``sinks`` to ``sm``, creating its :class:`ProbeBus` if needed.

    Returns the bus.  Use :func:`detach` to restore the probe-free hot
    path when done.
    """
    bus = sm.probes
    if bus is None:
        bus = ProbeBus()
        sm.probes = bus
    for sink in sinks:
        bus.attach(sink)
    return bus


def detach(sm):
    """Detach the probe bus (emitting ``finish``) and return it."""
    bus = sm.probes
    if bus is not None:
        bus.finish(sm)
        sm.probes = None
    return bus
