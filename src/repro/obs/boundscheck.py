"""Dynamic bounds-check accounting for the software-checked mode.

The compiler marks every surviving software bounds check (the ``BLTU``
guard emitted in ``boundscheck`` mode and not eliminated by
``repro.nocl.opt``) with its PC in ``CompiledKernel.bounds_check_pcs``.
:class:`BoundsCheckCounter` is a probe-bus sink that turns those static
sites into dynamic counts: how many guard instructions actually retired,
weighted by the executed lane count — i.e. per-thread checks performed.

This is the measurement behind ``scripts/opt_gap.py`` and the
``results/opt_boundscheck_gap.*`` artifact: the paper's argument for
hardware capability checks rests on software checks being *dynamically*
frequent, and the optimizer's bounds-check elimination shrinks exactly
that count.
"""


class BoundsCheckCounter:
    """Probe-bus sink counting dynamically executed bounds checks.

    Attach with :func:`repro.obs.attach`.  Counts accumulate across
    every kernel launched while attached (a benchmark may launch
    several kernels).
    """

    def __init__(self):
        #: Guard instructions retired, weighted by executed lanes
        #: (= per-thread dynamic bounds checks).
        self.checks_executed = 0
        #: Guard retire events (per-warp, unweighted).
        self.check_retires = 0
        #: Static surviving guard sites, summed over launches.
        self.static_sites = 0
        self.launches = 0
        self._pcs = frozenset()

    def on_launch(self, sm, program):
        # ``program`` on the bus is the raw instruction list; the
        # compiled kernel (which carries the guard PCs) rides side-band
        # on ``sm.kernel_info``, set by the NoCL runtime at launch.
        info = getattr(sm, "kernel_info", None)
        self._pcs = frozenset(getattr(info, "bounds_check_pcs", ()) or ())
        self.static_sites += len(self._pcs)
        self.launches += 1

    def on_retire(self, cycle, warp, pc, instr, lanes):
        if pc in self._pcs:
            self.checks_executed += len(lanes)
            self.check_retires += 1

    def as_dict(self):
        return {
            "checks_executed": self.checks_executed,
            "check_retires": self.check_retires,
            "static_sites": self.static_sites,
            "launches": self.launches,
        }
