"""Cycle-attributed profiles built on the probe bus.

:class:`ProfileCollector` subscribes to issue/idle events and attributes
every simulated cycle to the static instruction (PC) that consumed the
issue slot, then maps PCs back through the compiler's line side-band to
DSL source lines — an ``nvprof``-style hotspot report for the simulated
SM.  The accounting is exact by construction: the barrel scheduler
advances time only by issue widths and idle skips, so

    sum(per-PC issue slots) + idle cycles == stats.cycles

(pinned by ``tests/obs/test_profile.py``).  Memory/SFU wait cycles are
reported separately: they overlap with other warps' issues (that is the
point of barrel scheduling) and are therefore *not* additive into the
total.
"""

from repro.isa.instructions import (
    AMO_OPS,
    CHERI_SLOW_OPS,
    LOAD_OPS,
    SFU_OPS,
    STORE_OPS,
)

#: Stall causes, in the order the pipeline reports them per issue.
STALL_CAUSES = ("shared_vrf", "csc_operand", "bank_conflict",
                "atomic_serial")

_MEM_OPS = frozenset(LOAD_OPS) | frozenset(STORE_OPS) | frozenset(AMO_OPS)


def classify_op(op):
    """Coarse category for an opcode: mem / sfu / cheri-slow / compute."""
    if op in _MEM_OPS:
        return "mem"
    if op in SFU_OPS:
        return "sfu"
    if op in CHERI_SLOW_OPS:
        return "cheri_slow"
    return "compute"


class _PCStat:
    __slots__ = ("issues", "slots", "lanes", "mem_wait", "stalls")

    def __init__(self):
        self.issues = 0
        self.slots = 0
        self.lanes = 0
        self.mem_wait = 0
        self.stalls = [0, 0, 0, 0]


class _WarpStat:
    __slots__ = ("issues", "slots", "mem_wait", "stalls", "barriers")

    def __init__(self):
        self.issues = 0
        self.slots = 0
        self.mem_wait = 0
        self.stalls = [0, 0, 0, 0]
        self.barriers = 0


class _KernelProfile:
    __slots__ = ("name", "program", "kernel_info", "pcs", "launches")

    def __init__(self, name, program, kernel_info):
        self.name = name
        self.program = program
        self.kernel_info = kernel_info
        self.pcs = {}
        self.launches = 0


class ProfileCollector:
    """Probe sink accumulating per-PC, per-warp, and per-cause profiles.

    ``bucket_cycles`` controls the granularity of the stall/issue
    timeline (a coarse activity histogram over global cycles).
    """

    def __init__(self, bucket_cycles=1024):
        self.kernels = {}
        self.idle_cycles = 0
        self.warps = {}
        self.bucket_cycles = max(1, bucket_cycles)
        #: bucket index -> [issue_slots, stall_slots, mem_wait]
        self.timeline = {}
        self._cur = None
        self._depth = 0
        self._base = 0

    # -- probe handlers ---------------------------------------------------

    def on_launch(self, sm, program):
        info = sm.kernel_info
        name = info.name if info is not None else "<program>"
        kp = self.kernels.get(name)
        if kp is None:
            kp = _KernelProfile(name, program, info)
            self.kernels[name] = kp
        kp.launches += 1
        self._cur = kp
        self._depth = sm.cfg.pipeline_depth
        # Cycles accumulate across launches; later launches restart their
        # local clock at zero, so offset timeline samples by the cycles
        # already banked in the stats.
        self._base = sm.stats.cycles

    def on_issue(self, cycle, warp, pc, instr, n_lanes, width, completion,
                 stalls):
        rec = self._cur.pcs.get(pc)
        if rec is None:
            rec = self._cur.pcs[pc] = _PCStat()
        rec.issues += 1
        rec.slots += width
        rec.lanes += n_lanes
        wait = completion - cycle - self._depth
        if wait < 0:
            wait = 0
        rec.mem_wait += wait
        ws = self.warps.get(warp)
        if ws is None:
            ws = self.warps[warp] = _WarpStat()
        ws.issues += 1
        ws.slots += width
        ws.mem_wait += wait
        stall_total = 0
        if stalls != (0, 0, 0, 0):
            rs, wss = rec.stalls, ws.stalls
            for i in range(4):
                rs[i] += stalls[i]
                wss[i] += stalls[i]
                stall_total += stalls[i]
        bucket = (self._base + cycle) // self.bucket_cycles
        sample = self.timeline.get(bucket)
        if sample is None:
            sample = self.timeline[bucket] = [0, 0, 0]
        sample[0] += width
        sample[1] += stall_total
        sample[2] += wait

    def on_idle(self, cycle, until):
        self.idle_cycles += until - cycle

    def on_barrier(self, cycle, warp):
        ws = self.warps.get(warp)
        if ws is None:
            ws = self.warps[warp] = _WarpStat()
        ws.barriers += 1

    # -- aggregation ------------------------------------------------------

    def total_attributed(self):
        """Issue slots + idle cycles: must equal ``stats.cycles``."""
        issued = sum(rec.slots for kp in self.kernels.values()
                     for rec in kp.pcs.values())
        return issued + self.idle_cycles

    def by_pc(self):
        """Rows of per-PC attribution, hottest first."""
        rows = []
        for kp in self.kernels.values():
            for pc, rec in kp.pcs.items():
                index = pc >> 2
                instr = (kp.program[index]
                         if 0 <= index < len(kp.program) else None)
                rows.append({
                    "kernel": kp.name,
                    "pc": pc,
                    "op": instr.op.name if instr is not None else "?",
                    "text": str(instr) if instr is not None else "?",
                    "line": instr.line if instr is not None else None,
                    "category": (classify_op(instr.op)
                                 if instr is not None else "?"),
                    "issues": rec.issues,
                    "cycles": rec.slots,
                    "lanes": rec.lanes,
                    "mem_wait": rec.mem_wait,
                    "stalls": dict(zip(STALL_CAUSES, rec.stalls)),
                })
        rows.sort(key=lambda r: (-r["cycles"], r["kernel"], r["pc"]))
        return rows

    def by_source(self):
        """Per-PC rows folded onto (kernel, source line), hottest first."""
        agg = {}
        for row in self.by_pc():
            key = (row["kernel"], row["line"])
            entry = agg.get(key)
            if entry is None:
                kp = self.kernels[row["kernel"]]
                text = ""
                if row["line"] and kp.kernel_info is not None:
                    text = kp.kernel_info.line_text(row["line"])
                entry = agg[key] = {
                    "kernel": row["kernel"],
                    "line": row["line"],
                    "source": text if text else "<compiler prologue>",
                    "issues": 0, "cycles": 0, "mem_wait": 0,
                    "stalls": dict.fromkeys(STALL_CAUSES, 0),
                }
            entry["issues"] += row["issues"]
            entry["cycles"] += row["cycles"]
            entry["mem_wait"] += row["mem_wait"]
            for cause in STALL_CAUSES:
                entry["stalls"][cause] += row["stalls"][cause]
        rows = sorted(agg.values(),
                      key=lambda r: (-r["cycles"], r["kernel"],
                                     r["line"] or 0))
        return rows

    def warp_rows(self):
        rows = []
        for warp in sorted(self.warps):
            ws = self.warps[warp]
            rows.append({
                "warp": warp,
                "issues": ws.issues,
                "cycles": ws.slots,
                "mem_wait": ws.mem_wait,
                "barriers": ws.barriers,
                "stalls": dict(zip(STALL_CAUSES, ws.stalls)),
            })
        return rows

    def as_dict(self):
        """The whole profile as JSON-serialisable data."""
        return {
            "idle_cycles": self.idle_cycles,
            "attributed_cycles": self.total_attributed(),
            "by_source": self.by_source(),
            "by_pc": self.by_pc(),
            "warps": self.warp_rows(),
            "timeline_bucket_cycles": self.bucket_cycles,
            "timeline": {str(b): v
                         for b, v in sorted(self.timeline.items())},
        }

    # -- rendering --------------------------------------------------------

    def render_source(self, stats=None, limit=None):
        """The per-source-line hotspot table (``repro profile --source``)."""
        rows = self.by_source()
        if limit is not None:
            rows = rows[:limit]
        total = self.total_attributed()
        lines = [
            "%-10s %5s %10s %6s %10s %10s  %s" % (
                "kernel", "line", "cycles", "%", "mem_wait", "stalls",
                "source"),
        ]
        for row in rows:
            share = 100.0 * row["cycles"] / total if total else 0.0
            lines.append("%-10s %5s %10d %5.1f%% %10d %10d  %s" % (
                row["kernel"][:10],
                row["line"] if row["line"] else "-",
                row["cycles"], share, row["mem_wait"],
                sum(row["stalls"].values()), row["source"]))
        lines.append("%-10s %5s %10d %5.1f%%" % (
            "(idle)", "-", self.idle_cycles,
            100.0 * self.idle_cycles / total if total else 0.0))
        lines.append("%-10s %5s %10d %5.1f%%  (attributed total)" % (
            "total", "-", total, 100.0 if total else 0.0))
        if stats is not None:
            lines.append("stats.cycles = %d (%s)" % (
                stats.cycles,
                "exact match" if stats.cycles == total
                else "MISMATCH vs %d" % total))
        return "\n".join(lines)

    def render_pc(self, stats=None, limit=40):
        """The per-PC hotspot table (``repro profile --pc``)."""
        rows = self.by_pc()
        shown = rows if limit is None else rows[:limit]
        total = self.total_attributed()
        lines = [
            "%-10s %6s %10s %6s %10s %6s  %s" % (
                "kernel", "pc", "cycles", "%", "mem_wait", "line",
                "instruction"),
        ]
        for row in shown:
            share = 100.0 * row["cycles"] / total if total else 0.0
            lines.append("%-10s %06x %10d %5.1f%% %10d %6s  %s" % (
                row["kernel"][:10], row["pc"], row["cycles"], share,
                row["mem_wait"],
                row["line"] if row["line"] else "-", row["text"]))
        if limit is not None and len(rows) > limit:
            lines.append("... %d further PCs" % (len(rows) - limit))
        lines.append("%-10s %6s %10d %5.1f%%" % (
            "(idle)", "-", self.idle_cycles,
            100.0 * self.idle_cycles / total if total else 0.0))
        lines.append("%-10s %6s %10d  (attributed total)"
                     % ("total", "-", total))
        if stats is not None:
            lines.append("stats.cycles = %d (%s)" % (
                stats.cycles,
                "exact match" if stats.cycles == total
                else "MISMATCH vs %d" % total))
        return "\n".join(lines)

    def render_warps(self):
        """Per-warp occupancy and stall-cause breakdown."""
        lines = [
            "%4s %10s %10s %10s %9s  %s" % (
                "warp", "issues", "cycles", "mem_wait", "barriers",
                "stalls (vrf/csc/bank/atomic)"),
        ]
        for row in self.warp_rows():
            st = row["stalls"]
            lines.append("%4d %10d %10d %10d %9d  %d/%d/%d/%d" % (
                row["warp"], row["issues"], row["cycles"], row["mem_wait"],
                row["barriers"], st["shared_vrf"], st["csc_operand"],
                st["bank_conflict"], st["atomic_serial"]))
        return "\n".join(lines)

    def render_timeline(self, width=64):
        """A coarse issue/stall activity strip over global cycles."""
        if not self.timeline:
            return "(no samples)"
        buckets = sorted(self.timeline)
        lo, hi = buckets[0], buckets[-1]
        span = hi - lo + 1
        per_cell = max(1, (span + width - 1) // width)
        cells = [[0, 0, 0] for _ in range((span + per_cell - 1) // per_cell)]
        for bucket in buckets:
            cell = cells[(bucket - lo) // per_cell]
            sample = self.timeline[bucket]
            for i in range(3):
                cell[i] += sample[i]
        peak = max(cell[0] for cell in cells) or 1
        ramp = " .:-=+*#%@"
        rows = []
        for label, idx in (("issue", 0), ("stall", 1), ("memwait", 2)):
            strip = "".join(
                ramp[min(len(ramp) - 1,
                         (cell[idx] * (len(ramp) - 1)) // peak)]
                for cell in cells)
            rows.append("%8s |%s|" % (label, strip))
        rows.append("%8s  %d cycles per cell" %
                    ("", per_cell * self.bucket_cycles))
        return "\n".join(rows)
