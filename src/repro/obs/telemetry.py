"""Unified telemetry: metrics registry and span-based structured tracing.

Dependency-free (stdlib only) and shared by every layer that wants
service-grade observability: the simulation service (``repro.serve``),
the experiment runner (``repro.eval.runner``), and the CLI dashboards
(``repro top``, ``repro obs report``).

Metrics
=======

:class:`MetricsRegistry` holds three instrument kinds:

- :class:`Counter` — monotonically increasing value (``inc``);
- :class:`Gauge` — point-in-time value (``set``/``inc``/``dec``);
- :class:`Histogram` — fixed-bucket distribution with **exact streaming
  percentile bounds**: every observation lands in a bucket whose
  observed per-bucket min/max are tracked, so ``quantile_bounds(q)``
  returns an interval that is *guaranteed* to contain the true
  nearest-rank percentile of everything ever observed — no reservoir,
  no drop-oldest bias, O(buckets) memory regardless of sample count.

Counters and gauges also accept a ``fn`` callback so existing plain-int
bookkeeping (e.g. :class:`repro.serve.metrics.ServeMetrics`) can be
exposed through the registry without double accounting.

``exposition()`` renders the Prometheus text format; ``ndjson_record()``
returns one JSON-able time-series sample (the serve node appends these
to ``serve_metrics.ndjson`` periodically).

Tracing
=======

:class:`Span` / :class:`Tracer` implement minimal structured tracing
with cross-process context propagation: ``Tracer.inject(span)`` returns
a small JSON-able dict that travels in a job payload across the
client → scheduler → worker-process boundary, and the receiving process
reconstructs the parent linkage with ``extract``/``start_span(parent=
ctx)``.  Finished spans serialise to NDJSON (:meth:`Tracer.to_ndjson`)
and to Perfetto service tracks (:func:`repro.obs.perfetto.
spans_to_trace_events`).

Span timestamps are wall-clock (``time.time()``) so spans recorded in
different processes line up on one timeline.

Naming conventions (see DESIGN.md): metric names are
``<subsystem>_<noun>[_<unit>][_total]`` (``serve_jobs_executed_total``,
``serve_job_latency_seconds``); span names are ``<layer>.<verb>``
(``serve.submit``, ``serve.queue``, ``worker.execute``, ``runner.run``,
``jit.codegen``).

The process-global slot (:func:`install` / :func:`active_tracer`) is
how deep layers find the tracer without plumbing: it defaults to
``None`` and every instrumented call site guards with a single
``is None`` check, so telemetry that is not installed costs one
attribute load — and never touches simulated statistics either way
(pinned by ``tests/eval/test_equivalence.py``).
"""

import json
import os
import threading
import time
from bisect import bisect_left
from contextlib import contextmanager

#: Default histogram bucket upper bounds (seconds): latency-shaped,
#: spanning sub-millisecond cache hits to multi-minute verified sweeps.
LATENCY_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0, 300.0,
)


def _format_value(value):
    """Prometheus-style number rendering (ints without a decimal point)."""
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return "%d" % value
    return repr(round(float(value), 9))


class Counter:
    """Monotonically increasing metric (optionally callback-backed)."""

    kind = "counter"

    def __init__(self, name, help="", fn=None):
        self.name = name
        self.help = help
        self.fn = fn
        self._value = 0

    def inc(self, amount=1):
        if amount < 0:
            raise ValueError("counter %s cannot decrease" % self.name)
        self._value += amount

    @property
    def value(self):
        return self.fn() if self.fn is not None else self._value

    def snapshot(self):
        return self.value


class Gauge:
    """Point-in-time metric (optionally callback-backed)."""

    kind = "gauge"

    def __init__(self, name, help="", fn=None):
        self.name = name
        self.help = help
        self.fn = fn
        self._value = 0

    def set(self, value):
        self._value = value

    def inc(self, amount=1):
        self._value += amount

    def dec(self, amount=1):
        self._value -= amount

    @property
    def value(self):
        return self.fn() if self.fn is not None else self._value

    def snapshot(self):
        return self.value


class Histogram:
    """Fixed-bucket histogram with exact streaming percentile bounds.

    ``buckets`` are the finite upper bounds; an implicit +Inf bucket
    catches the overflow.  Per-bucket observed min/max make
    :meth:`quantile_bounds` exact: the true nearest-rank percentile of
    *all* observations lies inside the returned interval, however many
    samples have streamed through.  Compare the reservoir this replaced
    (drop-oldest beyond 4096 samples), whose tail percentiles silently
    forgot history under long sessions.
    """

    kind = "histogram"

    def __init__(self, name, help="", buckets=LATENCY_BUCKETS):
        self.name = name
        self.help = help
        self.buckets = tuple(sorted(buckets))
        if not self.buckets:
            raise ValueError("histogram %s needs at least one bucket"
                             % name)
        n = len(self.buckets) + 1          # + overflow bucket
        self.counts = [0] * n
        self._mins = [None] * n
        self._maxs = [None] * n
        self.count = 0
        self.sum = 0.0

    def observe(self, value):
        index = bisect_left(self.buckets, value)
        self.counts[index] += 1
        self.count += 1
        self.sum += value
        if self._mins[index] is None or value < self._mins[index]:
            self._mins[index] = value
        if self._maxs[index] is None or value > self._maxs[index]:
            self._maxs[index] = value

    def quantile_bounds(self, fraction):
        """Exact (lower, upper) bounds on the nearest-rank percentile.

        Returns ``(0.0, 0.0)`` for an empty histogram.  The bounds are
        the observed min/max of the bucket holding the rank, so the true
        percentile of the full observation stream lies within them.
        """
        if self.count == 0:
            return (0.0, 0.0)
        rank = min(self.count - 1,
                   max(0, int(round(fraction * (self.count - 1)))))
        cumulative = 0
        for index, bucket_count in enumerate(self.counts):
            cumulative += bucket_count
            if rank < cumulative:
                return (self._mins[index], self._maxs[index])
        # Unreachable (count > 0 means some bucket holds the rank).
        return (self._mins[-1] or 0.0, self._maxs[-1] or 0.0)

    def quantile(self, fraction):
        """Conservative scalar percentile: the upper bound of
        :meth:`quantile_bounds` (true percentile is never larger)."""
        return self.quantile_bounds(fraction)[1]

    def snapshot(self):
        return {
            "count": self.count,
            "sum": round(self.sum, 9),
            "min": self._observed_min(),
            "max": self._observed_max(),
            "buckets": {
                ("%g" % edge): self.counts[index]
                for index, edge in enumerate(self.buckets)
            } | {"+Inf": self.counts[-1]},
            "p50": round(self.quantile(0.50), 9),
            "p95": round(self.quantile(0.95), 9),
            "p99": round(self.quantile(0.99), 9),
        }

    def _observed_min(self):
        values = [value for value in self._mins if value is not None]
        return min(values) if values else 0.0

    def _observed_max(self):
        values = [value for value in self._maxs if value is not None]
        return max(values) if values else 0.0


class MetricsRegistry:
    """Registry of named instruments; registration is idempotent.

    ``counter``/``gauge``/``histogram`` get-or-create: asking twice for
    the same name returns the same instrument (a kind mismatch raises).
    Registration takes a lock; instrument updates themselves are
    lock-free — the serve node updates everything from one event loop,
    and worker processes own private registries.
    """

    def __init__(self):
        self._metrics = {}
        self._lock = threading.Lock()

    def _register(self, cls, name, **kwargs):
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ValueError(
                        "metric %r already registered as %s"
                        % (name, existing.kind))
                return existing
            metric = cls(name, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name, help="", fn=None):
        return self._register(Counter, name, help=help, fn=fn)

    def gauge(self, name, help="", fn=None):
        return self._register(Gauge, name, help=help, fn=fn)

    def histogram(self, name, help="", buckets=LATENCY_BUCKETS):
        return self._register(Histogram, name, help=help, buckets=buckets)

    def __iter__(self):
        return iter(list(self._metrics.values()))

    def get(self, name):
        return self._metrics.get(name)

    def snapshot(self):
        """All instruments as one JSON-able dict keyed by metric name."""
        return {metric.name: metric.snapshot() for metric in self}

    def exposition(self):
        """Prometheus text exposition format (version 0.0.4)."""
        lines = []
        for metric in self:
            if metric.help:
                lines.append("# HELP %s %s" % (metric.name, metric.help))
            lines.append("# TYPE %s %s" % (metric.name, metric.kind))
            if metric.kind == "histogram":
                cumulative = 0
                for index, edge in enumerate(metric.buckets):
                    cumulative += metric.counts[index]
                    lines.append('%s_bucket{le="%g"} %d'
                                 % (metric.name, edge, cumulative))
                cumulative += metric.counts[-1]
                lines.append('%s_bucket{le="+Inf"} %d'
                             % (metric.name, cumulative))
                lines.append("%s_sum %s"
                             % (metric.name, _format_value(metric.sum)))
                lines.append("%s_count %d" % (metric.name, metric.count))
            else:
                lines.append("%s %s"
                             % (metric.name, _format_value(metric.value)))
        return "\n".join(lines) + "\n"

    def ndjson_record(self, now=None):
        """One time-series sample: ``{"ts": ..., "metrics": {...}}``."""
        return {"ts": round(time.time() if now is None else now, 6),
                "metrics": self.snapshot()}

    def write_snapshot(self, path, now=None):
        """Append one NDJSON time-series sample to ``path`` (best
        effort; a read-only checkout never breaks the caller)."""
        try:
            os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
            with open(path, "a") as stream:
                stream.write(json.dumps(self.ndjson_record(now),
                                        sort_keys=True,
                                        separators=(",", ":")) + "\n")
        except OSError:
            return None
        return path


# -- tracing ---------------------------------------------------------------


def new_id():
    """A fresh 64-bit hex id for traces and spans."""
    return os.urandom(8).hex()


class Span:
    """One timed operation in a trace.

    ``trace_id`` groups every span of one logical job; ``parent_id``
    builds the tree.  ``process`` names where the span ran (``client``,
    ``scheduler``, ``worker-3``) and becomes the Perfetto track.
    """

    __slots__ = ("name", "trace_id", "span_id", "parent_id", "start",
                 "end", "attrs", "status", "process")

    def __init__(self, name, trace_id=None, span_id=None, parent_id=None,
                 start=None, process="", attrs=None):
        self.name = name
        self.trace_id = trace_id or new_id()
        self.span_id = span_id or new_id()
        self.parent_id = parent_id
        self.start = time.time() if start is None else start
        self.end = None
        self.attrs = dict(attrs or {})
        self.status = "ok"
        self.process = process

    def set_attr(self, key, value):
        self.attrs[key] = value
        return self

    def finish(self, end=None, status=None):
        if self.end is None:
            self.end = time.time() if end is None else end
        if status is not None:
            self.status = status
        return self

    @property
    def duration(self):
        return (self.end - self.start) if self.end is not None else None

    def as_dict(self):
        out = {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_unix": round(self.start, 6),
            "end_unix": round(self.end, 6) if self.end is not None
            else None,
            "status": self.status,
            "process": self.process,
        }
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        return out

    @classmethod
    def from_dict(cls, data):
        span = cls(data.get("name", "?"),
                   trace_id=data.get("trace_id"),
                   span_id=data.get("span_id"),
                   parent_id=data.get("parent_id"),
                   start=data.get("start_unix", 0.0),
                   process=data.get("process", ""),
                   attrs=data.get("attrs"))
        span.end = data.get("end_unix")
        span.status = data.get("status", "ok")
        return span


class Tracer:
    """Collects finished spans for one process.

    Bounded: beyond ``limit`` finished spans new ones are counted as
    dropped instead of retained, so a million-job serve session cannot
    grow without bound.  ``ingest`` merges span dicts recorded by
    another process (the worker returns its spans in the job payload).
    """

    def __init__(self, process="", limit=100_000):
        self.process = process
        self.limit = limit
        self.spans = []
        self.dropped = 0
        self._stack = []

    def current_span(self):
        """The innermost span opened by :meth:`span`, or ``None``.

        This is how deep layers (the runner, the JIT) parent their spans
        without plumbing: the worker wraps job execution in a
        ``worker.execute`` span, and anything opened underneath nests
        automatically.
        """
        return self._stack[-1] if self._stack else None

    def start_span(self, name, parent=None, trace_id=None, start=None,
                   attrs=None, process=None):
        """Open a span.  ``parent`` is a :class:`Span` or an injected
        context dict (``{"trace_id", "span_id"}``) from another
        process; when omitted the current :meth:`span` context (if any)
        becomes the parent, else the span is a new root."""
        if parent is None:
            parent = self.current_span()
        parent_id = None
        if isinstance(parent, Span):
            trace_id = trace_id or parent.trace_id
            parent_id = parent.span_id
        elif isinstance(parent, dict):
            trace_id = trace_id or parent.get("trace_id")
            parent_id = parent.get("span_id")
        return Span(name, trace_id=trace_id, parent_id=parent_id,
                    start=start, attrs=attrs,
                    process=self.process if process is None else process)

    def record(self, span, end=None, status=None):
        """Finish ``span`` (if still open) and retain it."""
        span.finish(end=end, status=status)
        if self.limit is not None and len(self.spans) >= self.limit:
            self.dropped += 1
        else:
            self.spans.append(span)
        return span

    @contextmanager
    def span(self, name, parent=None, **kwargs):
        span = self.start_span(name, parent=parent, **kwargs)
        self._stack.append(span)
        try:
            yield span
        except BaseException:
            self.record(span, status="error")
            raise
        finally:
            self._stack.pop()
        self.record(span)

    def ingest(self, span_dicts):
        """Merge spans serialised by another process's tracer."""
        for data in span_dicts or ():
            if self.limit is not None and len(self.spans) >= self.limit:
                self.dropped += 1
            else:
                self.spans.append(Span.from_dict(data))

    @staticmethod
    def inject(span):
        """The JSON-able propagation context for ``span``."""
        return {"trace_id": span.trace_id, "span_id": span.span_id}

    @staticmethod
    def extract(context):
        """Validate an injected context dict (or return ``None``)."""
        if (isinstance(context, dict) and context.get("trace_id")
                and context.get("span_id")):
            return {"trace_id": str(context["trace_id"]),
                    "span_id": str(context["span_id"])}
        return None

    def drain(self):
        """Finished spans as dicts, clearing the tracer."""
        spans, self.spans = self.spans, []
        return [span.as_dict() for span in spans]

    def to_dicts(self):
        return [span.as_dict() for span in self.spans]

    def to_ndjson(self, path):
        """Write every finished span as NDJSON; returns path or None."""
        try:
            os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
            with open(path, "w") as stream:
                for span in self.spans:
                    stream.write(json.dumps(span.as_dict(), sort_keys=True,
                                            separators=(",", ":")) + "\n")
        except OSError:
            return None
        return path


def load_ndjson_spans(path):
    """Read spans written by :meth:`Tracer.to_ndjson` back as dicts."""
    spans = []
    with open(path) as stream:
        for line in stream:
            line = line.strip()
            if line:
                spans.append(json.loads(line))
    return spans


# -- process-global telemetry slot ----------------------------------------

_ACTIVE_TRACER = None


def install(tracer):
    """Install ``tracer`` as this process's active tracer; returns the
    previous one (``None`` to uninstall)."""
    global _ACTIVE_TRACER
    previous = _ACTIVE_TRACER
    _ACTIVE_TRACER = tracer
    return previous


def active_tracer():
    """The process-global tracer, or ``None`` when telemetry is off.

    Call sites guard with ``is None`` — uninstalled telemetry costs one
    module attribute load and never perturbs simulated statistics.
    """
    return _ACTIVE_TRACER
