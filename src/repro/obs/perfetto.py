"""Chrome trace-event / Perfetto export of simulated timelines.

:class:`TimelineCollector` is a probe sink that records one slice per
issued instruction (one track per warp, coloured by category: compute /
memory / SFU / stalled) plus counter tracks for VRF and metadata-RF
occupancy and cumulative DRAM traffic.  :meth:`TimelineCollector.export`
writes the standard ``{"traceEvents": [...]}`` JSON that loads directly
in https://ui.perfetto.dev or ``chrome://tracing``.

Timestamps are simulated cycles expressed as microseconds (1 cycle =
1 us), which Perfetto renders with sensible zooming.  Multi-kernel
benchmarks share one timebase: each launch's local clock is offset by the
cycles already accumulated in ``stats.cycles``.
"""

import json

from repro.obs.profile import STALL_CAUSES, classify_op

#: chrome://tracing reserved colour names per slice category.
_CNAME = {
    "compute": "thread_state_running",     # green
    "mem": "thread_state_iowait",          # orange
    "sfu": "thread_state_runnable",        # blue
    "cheri_slow": "thread_state_unknown",  # brown-ish
    "stall": "terrible",                   # red
    "idle": "grey",
}

_PID = 1

#: Track id for scheduler idle gaps (kept clear of real warp indices).
_IDLE_TID = 10_000


class TimelineCollector:
    """Records issue slices and counter samples for Perfetto export.

    ``limit`` bounds the number of slices kept (long runs stay
    exportable); dropped slices are counted and reported in the trace
    metadata.  ``counter_every`` decimates counter-track sampling to one
    sample per N issues.
    """

    def __init__(self, limit=200_000, counter_every=8):
        self.slices = []
        self.counters = []
        self.idle_slices = []
        self.limit = limit
        self.counter_every = max(1, counter_every)
        self.dropped = 0
        self.kernel_names = {}
        self._sm = None
        self._base = 0
        self._issue_count = 0

    # -- probe handlers ---------------------------------------------------

    def on_launch(self, sm, program):
        self._sm = sm
        self._base = sm.stats.cycles
        info = sm.kernel_info
        if info is not None:
            self.kernel_names[self._base] = info.name

    def on_issue(self, cycle, warp, pc, instr, n_lanes, width, completion,
                 stalls):
        ts = self._base + cycle
        if self.limit is not None and len(self.slices) >= self.limit:
            self.dropped += 1
        else:
            category = classify_op(instr.op)
            if stalls != (0, 0, 0, 0):
                category = "stall"
            dur = completion - cycle
            if dur < width:
                dur = width
            self.slices.append((ts, warp, pc, instr.op.name, dur, n_lanes,
                                category, stalls, instr.line))
        self._issue_count += 1
        if self._issue_count % self.counter_every == 0:
            self._sample_counters(ts)

    def on_idle(self, cycle, until):
        if self.limit is None or len(self.idle_slices) < self.limit:
            self.idle_slices.append((self._base + cycle, until - cycle))

    def _sample_counters(self, ts):
        sm = self._sm
        if sm is None:
            return
        meta = sm.meta.resident_vectors if sm.meta is not None else 0
        dram = sm.dram.stats
        self.counters.append((ts, sm.gp.resident_vectors, meta,
                              dram.read_bytes, dram.write_bytes))

    # -- export -----------------------------------------------------------

    def to_trace(self):
        """The trace as a JSON-serialisable dict (Chrome trace format)."""
        events = []
        warps = sorted({s[1] for s in self.slices})
        events.append({
            "name": "process_name", "ph": "M", "pid": _PID, "tid": 0,
            "args": {"name": "SM0 (%s)" % ", ".join(
                self.kernel_names[k] for k in sorted(self.kernel_names))},
        })
        for warp in warps:
            events.append({
                "name": "thread_name", "ph": "M", "pid": _PID, "tid": warp,
                "args": {"name": "warp %d" % warp},
            })
            events.append({
                "name": "thread_sort_index", "ph": "M", "pid": _PID,
                "tid": warp, "args": {"sort_index": warp},
            })
        for (ts, warp, pc, op, dur, n_lanes, category, stalls,
             line) in self.slices:
            args = {"pc": "0x%06x" % pc, "lanes": n_lanes,
                    "category": category}
            if line:
                args["source_line"] = line
            if stalls != (0, 0, 0, 0):
                for cause, extra in zip(STALL_CAUSES, stalls):
                    if extra:
                        args["stall_" + cause] = extra
            events.append({
                "name": op, "cat": category, "ph": "X", "ts": ts,
                "dur": dur, "pid": _PID, "tid": warp,
                "cname": _CNAME.get(category, "grey"), "args": args,
            })
        for ts, dur in self.idle_slices:
            events.append({
                "name": "scheduler idle", "cat": "idle", "ph": "X",
                "ts": ts, "dur": dur, "pid": _PID, "tid": _IDLE_TID,
                "cname": _CNAME["idle"], "args": {},
            })
        if self.idle_slices:
            events.append({
                "name": "thread_name", "ph": "M", "pid": _PID, "tid": _IDLE_TID,
                "args": {"name": "scheduler (idle gaps)"},
            })
        for ts, gp, meta, read_bytes, write_bytes in self.counters:
            events.append({
                "name": "VRF resident vectors", "ph": "C", "ts": ts,
                "pid": _PID, "args": {"gp": gp, "meta": meta},
            })
            events.append({
                "name": "DRAM bytes (cumulative)", "ph": "C", "ts": ts,
                "pid": _PID,
                "args": {"read": read_bytes, "write": write_bytes},
            })
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {
                "generator": "repro.obs.perfetto",
                "time_unit": "1 ts = 1 simulated cycle",
                "dropped_slices": self.dropped,
            },
        }

    def export(self, path):
        """Write the trace JSON to ``path``; returns the path."""
        with open(path, "w") as stream:
            json.dump(self.to_trace(), stream, separators=(",", ":"))
        return path


#: pid for service-level (span) tracks, clear of the SM timeline pid.
_SERVICE_PID = 2


def spans_to_trace_events(spans, pid=_SERVICE_PID):
    """Telemetry spans → Chrome trace events (service-level tracks).

    ``spans`` are dicts from :meth:`repro.obs.telemetry.Tracer.to_dicts`
    (or the NDJSON file).  One track (tid) per originating process
    (``client`` / ``scheduler`` / ``worker-N``), B/E event pairs so
    nested and overlapping spans render without slice-overlap
    constraints.  Timestamps are microseconds relative to the earliest
    span start, so service traces zoom sensibly in ui.perfetto.dev.
    """
    finished = [span for span in spans
                if span.get("end_unix") is not None]
    if not finished:
        return []
    base = min(span["start_unix"] for span in finished)
    tracks = {}
    for span in finished:
        tracks.setdefault(span.get("process") or "service",
                          len(tracks))
    events = [{
        "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
        "args": {"name": "repro.serve (service trace)"},
    }]
    for track, tid in tracks.items():
        events.append({"name": "thread_name", "ph": "M", "pid": pid,
                       "tid": tid, "args": {"name": track}})
        events.append({"name": "thread_sort_index", "ph": "M", "pid": pid,
                       "tid": tid, "args": {"sort_index": tid}})
    timed = []
    for span in finished:
        tid = tracks[span.get("process") or "service"]
        args = {"trace_id": span.get("trace_id"),
                "span_id": span.get("span_id"),
                "status": span.get("status", "ok")}
        if span.get("parent_id"):
            args["parent_id"] = span["parent_id"]
        for key, value in (span.get("attrs") or {}).items():
            args[str(key)] = value
        start = int(round((span["start_unix"] - base) * 1e6))
        end = max(start, int(round((span["end_unix"] - base) * 1e6)))
        common = {"name": span.get("name", "?"), "cat": "service",
                  "pid": pid, "tid": tid}
        timed.append((start, 1, dict(common, ph="B", ts=start, args=args)))
        timed.append((end, 0, dict(common, ph="E", ts=end)))
    # Equal timestamps: close the previous slice before opening the next.
    timed.sort(key=lambda item: (item[0], item[1]))
    events.extend(event for _, _, event in timed)
    return events


def write_service_trace(spans, path):
    """Write spans as a standalone Perfetto/Chrome trace JSON file."""
    trace = {
        "traceEvents": spans_to_trace_events(spans),
        "displayTimeUnit": "ms",
        "otherData": {
            "generator": "repro.obs.telemetry",
            "time_unit": "1 ts = 1 microsecond (wall clock)",
            "spans": len(spans),
        },
    }
    try:
        import os
        os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
        with open(path, "w") as stream:
            json.dump(trace, stream, separators=(",", ":"))
    except OSError:
        return None
    return path


def validate_trace(trace):
    """Sanity-check a trace dict against the Chrome trace-event schema.

    Returns a list of problems (empty when the trace is loadable).  Used
    by the schema test and handy when extending the exporter.
    """
    problems = []
    if not isinstance(trace, dict) or "traceEvents" not in trace:
        return ["missing traceEvents key"]
    events = trace["traceEvents"]
    if not isinstance(events, list):
        return ["traceEvents is not a list"]
    last_end = {}
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            problems.append("event %d not an object" % i)
            continue
        ph = event.get("ph")
        if ph not in ("X", "M", "C", "B", "E", "I"):
            problems.append("event %d: unsupported ph %r" % (i, ph))
            continue
        if "name" not in event:
            problems.append("event %d: missing name" % i)
        if ph in ("X", "C") and not isinstance(event.get("ts"), int):
            problems.append("event %d: missing integer ts" % i)
        if ph == "X":
            if not isinstance(event.get("dur"), int) or event["dur"] < 0:
                problems.append("event %d: bad dur" % i)
                continue
            tid = event.get("tid")
            key = (event.get("pid"), tid)
            start = event["ts"]
            if start < last_end.get(key, 0) - 0:
                if start < last_end[key]:
                    problems.append(
                        "event %d: slice overlaps previous on tid %r"
                        % (i, tid))
            end = start + event["dur"]
            if end > last_end.get(key, 0):
                last_end[key] = end
    return problems
