"""Word-granule tagged main memory.

The backing store is sparse (a dict of 32-bit words keyed by word index) so
the full 4 GiB address space is addressable without allocation.  Every
naturally-aligned 32-bit word carries one hidden tag bit; a 64-bit
capability is valid only if both of its halves' tags are set (the paper's
section 3.4 invariant).  Ordinary data writes clear the tags of the words
they touch, which is what makes capabilities unforgeable.
"""

MASK32 = 0xFFFFFFFF


class MemoryError_(Exception):
    """Alignment or range fault raised by the memory model."""


class TaggedMemory:
    """Sparse 4 GiB byte-addressable memory with per-32-bit-word tags."""

    def __init__(self):
        self._words = {}
        self._tags = set()

    # -- scalar data access -------------------------------------------------

    def _check(self, addr, width):
        if addr % width:
            raise MemoryError_("misaligned %d-byte access at 0x%08x" % (width, addr))
        if not 0 <= addr <= (1 << 32) - width:
            raise MemoryError_("address out of range: 0x%x" % addr)

    def read(self, addr, width, signed=False):
        """Read a 1/2/4-byte value; sub-word reads are little-endian."""
        self._check(addr, width)
        word = self._words.get(addr >> 2, 0)
        shift = (addr & 0x3) * 8
        value = (word >> shift) & ((1 << (width * 8)) - 1)
        if signed:
            sign = 1 << (width * 8 - 1)
            value = (value & (sign - 1)) - (value & sign)
        return value

    def write(self, addr, width, value):
        """Write a 1/2/4-byte value; clears the containing word's tag."""
        self._check(addr, width)
        index = addr >> 2
        shift = (addr & 0x3) * 8
        mask = ((1 << (width * 8)) - 1) << shift
        old = self._words.get(index, 0)
        self._words[index] = (old & ~mask) | ((value << shift) & mask)
        self._tags.discard(index)

    # -- capability access --------------------------------------------------

    def read_cap_raw(self, addr):
        """Read a 64-bit value + tag at an 8-byte-aligned address.

        Returns ``(value64, tag)`` where the tag is the AND of both halves'
        tag bits (the 32-bit-granule invariant).
        """
        self._check(addr, 8)
        index = addr >> 2
        lo = self._words.get(index, 0)
        hi = self._words.get(index + 1, 0)
        tag = index in self._tags and (index + 1) in self._tags
        return (hi << 32) | lo, tag

    def write_cap_raw(self, addr, value64, tag):
        """Write a 64-bit value + tag at an 8-byte-aligned address."""
        self._check(addr, 8)
        index = addr >> 2
        self._words[index] = value64 & MASK32
        self._words[index + 1] = (value64 >> 32) & MASK32
        if tag:
            self._tags.add(index)
            self._tags.add(index + 1)
        else:
            self._tags.discard(index)
            self._tags.discard(index + 1)

    def word_tag(self, addr):
        """The tag bit of the 32-bit word containing ``addr``."""
        return (addr >> 2) in self._tags

    # -- bulk host-side helpers (used by the NoCL runtime) ------------------

    def write_block_words(self, addr, words):
        """Host-side bulk store of 32-bit words (tags cleared)."""
        self._check(addr, 4)
        index = addr >> 2
        for offset, word in enumerate(words):
            self._words[index + offset] = word & MASK32
            self._tags.discard(index + offset)

    def read_block_words(self, addr, count):
        """Host-side bulk load of 32-bit words."""
        self._check(addr, 4)
        index = addr >> 2
        return [self._words.get(index + offset, 0) for offset in range(count)]

    def tagged_word_count(self):
        """Number of words currently holding capability-half tags."""
        return len(self._tags)
