"""DRAM timing and traffic model.

A simple but sufficient model of the DDR4 DIMM behind the SoC (paper
Figure 9): fixed access latency plus a bandwidth limit expressed as one
transaction (up to ``line_bytes`` wide) accepted per ``cycles_per_txn``
cycles.  The coalescing unit issues one transaction per coalesced group, so
memory-access regularity directly reduces both latency exposure and the
byte counters that reproduce Figure 12 (DRAM bandwidth usage).
"""

from dataclasses import dataclass


@dataclass
class DRAMStats:
    """Traffic counters, split by direction and by cause."""

    read_txns: int = 0
    write_txns: int = 0
    read_bytes: int = 0
    write_bytes: int = 0
    # Extra traffic caused by register-file spilling (Table 2's
    # "Mem Access Overhead" column measures this share).
    spill_bytes: int = 0
    # Extra traffic caused by tag-cache misses.
    tag_bytes: int = 0

    @property
    def total_bytes(self):
        return self.read_bytes + self.write_bytes

    @property
    def total_txns(self):
        return self.read_txns + self.write_txns


class DRAMModel:
    """Latency + bandwidth model in front of a :class:`TaggedMemory`."""

    def __init__(self, latency=40, line_bytes=64, cycles_per_txn=1):
        self.latency = latency
        self.line_bytes = line_bytes
        self.cycles_per_txn = cycles_per_txn
        self.stats = DRAMStats()
        self._next_free = 0

    def reset_timing(self):
        self._next_free = 0

    def request(self, cycle, is_write, n_bytes, spill=False, tag_traffic=False):
        """Account one transaction; returns its completion cycle.

        ``n_bytes`` may exceed ``line_bytes``; wide requests occupy the
        channel for multiple slots.
        """
        slots = max(1, -(-n_bytes // self.line_bytes))
        start = max(cycle, self._next_free)
        self._next_free = start + slots * self.cycles_per_txn
        if is_write:
            self.stats.write_txns += slots
            self.stats.write_bytes += n_bytes
        else:
            self.stats.read_txns += slots
            self.stats.read_bytes += n_bytes
        if spill:
            self.stats.spill_bytes += n_bytes
        if tag_traffic:
            self.stats.tag_bytes += n_bytes
        return start + slots * self.cycles_per_txn + self.latency
