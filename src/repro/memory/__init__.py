"""Tagged memory subsystem: main memory, tag controller, and DRAM model.

CHERI requires a hidden validity tag for every capability-sized memory
granule.  SIMTight's memory subsystem is natively 32-bit, so the paper
(section 3.4) keeps one tag bit per naturally-aligned 32-bit word, with the
invariant that a 64-bit capability is valid only when the tags of *both* of
its halves are set.  Tags live in a reserved region behind a tag controller
with a tag cache (paper section 2.4, [Joannou et al., ICCD 2017]).
"""

from repro.memory.dram import DRAMModel
from repro.memory.main_memory import MemoryError_, TaggedMemory
from repro.memory.tag_controller import TagController

__all__ = ["DRAMModel", "MemoryError_", "TagController", "TaggedMemory"]
