"""Tag controller with a compact hierarchical tag cache.

CHERI stores the hidden tag bits in a reserved region of main memory that is
not architecturally addressable.  The tag controller sits in front of DRAM
and makes each data word and its tag bit appear to be accessed atomically
(paper section 2.4).  Its tag cache exploits the observation of Joannou et
al. [ICCD 2017] that most memory blocks hold no capabilities at all: a
coarse-grained root bitmap records, per large region, whether *any* tag in
the region is set, so accesses to capability-free regions need no tag-bit
traffic at all.  This reduces the tag-access overhead to almost zero in
practice, which is why Figure 12's DRAM bandwidth is essentially unchanged
by CHERI.
"""


class TagController:
    """Models tag-cache hits/misses and the resulting extra DRAM traffic."""

    def __init__(self, memory, dram, cache_lines=64, line_words=512,
                 region_words=4096):
        self.memory = memory
        self.dram = dram
        self.line_words = line_words
        self.region_words = region_words
        self.cache_lines = cache_lines
        # Direct-mapped tag cache: set index -> line tag address.
        self._cache = {}
        # Regions known (conservatively) to contain at least one set tag.
        self._dirty_regions = set()
        self.hits = 0
        self.misses = 0
        self.zero_region_skips = 0

    def _line_of(self, addr):
        return (addr >> 2) // self.line_words

    def _region_of(self, addr):
        return (addr >> 2) // self.region_words

    def access(self, cycle, addr, is_write, writes_tag=False):
        """Account a tag-bit lookup for a data access at ``addr``.

        Returns the extra completion-cycle bound imposed by tag traffic
        (``cycle`` unchanged on hit or zero-region skip).
        """
        if writes_tag:
            self._dirty_regions.add(self._region_of(addr))
        elif self._region_of(addr) not in self._dirty_regions:
            # Hierarchical zero-line optimisation: region holds no tags, so
            # the (all-zero) tag bits need not be fetched.
            self.zero_region_skips += 1
            return cycle
        line = self._line_of(addr)
        index = line % self.cache_lines
        if self._cache.get(index) == line:
            self.hits += 1
            return cycle
        self.misses += 1
        self._cache[index] = line
        # A miss costs one narrow DRAM transfer for the tag line.
        return self.dram.request(cycle, is_write=False,
                                 n_bytes=self.line_words // 8,
                                 tag_traffic=True)

    @property
    def miss_rate(self):
        total = self.hits + self.misses
        return self.misses / total if total else 0.0
