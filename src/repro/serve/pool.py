"""Sharded multi-process worker pool.

Each worker is a long-lived ``multiprocessing`` process (``spawn`` start
method: the server runs threads, and forking a threaded process can
inherit locks mid-acquire) fed through a private depth-one task queue —
private queues make job ownership unambiguous, which is what the crash
detector needs: when a worker dies, exactly the job assigned to it is
the one to retry.  All workers share one result queue back to the
server.

The pool itself is policy-free and asyncio-free: the scheduler decides
*what* to assign, *when* to kill (timeouts), and what a crash means
(retry vs fail); the pool only spawns, assigns, reaps, and respawns.

Worker-side messages on the result queue::

    ("started", worker_id, job_id)
    ("done",    worker_id, job_id, payload)
    ("error",   worker_id, job_id, "ExcType: message")

A worker that dies without reporting (SIGKILL, segfault, machine OOM)
is noticed by :meth:`WorkerPool.reap` via process liveness.
"""

import itertools
import multiprocessing
import os
import time

from repro.serve.jobs import execute_spec

#: How long to wait for a worker to exit voluntarily at shutdown.
_JOIN_SECONDS = 2.0


def _worker_main(worker_id, task_queue, result_queue, env):
    """Worker process entry point (top-level: spawn-picklable).

    ``env`` carries the cache/manifest redirects the server was started
    with, so spawned workers (which do not inherit a fork'd
    environment's later mutations) hit the same disk cache.

    Each job executes under a ``worker.execute`` telemetry span whose
    parent is the scheduler-side job span (context propagated through
    the task queue), so one submission yields a single connected
    client → scheduler → worker trace.  The worker's tracer is
    installed process-globally, which is how the runner's own
    ``runner.run``/``simulate``/``jit.codegen`` spans nest underneath.
    Finished spans ride back in the payload under ``trace_spans``; the
    scheduler strips and ingests them.
    """
    os.environ.update(env)
    from repro.obs import telemetry
    tracer = telemetry.Tracer(process="worker-%d" % worker_id)
    telemetry.install(tracer)
    while True:
        item = task_queue.get()
        if item is None:
            break
        job_id, spec_dict, trace_ctx = (item if len(item) == 3
                                        else (item[0], item[1], None))
        result_queue.put(("started", worker_id, job_id))
        try:
            with tracer.span("worker.execute",
                             parent=telemetry.Tracer.extract(trace_ctx),
                             attrs={"job": job_id}):
                payload = execute_spec(spec_dict)
        except BaseException as exc:  # report, keep the worker alive
            tracer.drain()  # error replies carry no payload for spans
            result_queue.put(("error", worker_id, job_id,
                              "%s: %s" % (type(exc).__name__, exc)))
        else:
            if isinstance(payload, dict):
                payload["trace_spans"] = tracer.drain()
            else:
                tracer.drain()
            result_queue.put(("done", worker_id, job_id, payload))


class WorkerHandle:
    """One worker process plus its assignment bookkeeping."""

    def __init__(self, worker_id, process, task_queue):
        self.worker_id = worker_id
        self.process = process
        self.task_queue = task_queue
        self.job_id = None          # currently-assigned job, if any
        self.assigned_at = None     # monotonic time of assignment
        self.jobs_done = 0
        self.kill_reason = None     # set when the scheduler killed it

    @property
    def pid(self):
        return self.process.pid

    def alive(self):
        return self.process.is_alive()

    def busy_seconds(self):
        if self.assigned_at is None:
            return 0.0
        return time.monotonic() - self.assigned_at

    def as_dict(self):
        return {
            "worker_id": self.worker_id,
            "pid": self.pid,
            "alive": self.alive(),
            "job": self.job_id,
            "busy_seconds": round(self.busy_seconds(), 3),
            "jobs_done": self.jobs_done,
        }


class WorkerPool:
    """Fixed-width pool of simulation workers."""

    def __init__(self, num_workers, env=None):
        self.num_workers = max(1, num_workers)
        self._ctx = multiprocessing.get_context("spawn")
        self._env = dict(env or {})
        self._ids = itertools.count()
        self.result_queue = self._ctx.Queue()
        self.workers = [self._spawn() for _ in range(self.num_workers)]

    def _spawn(self):
        worker_id = next(self._ids)
        task_queue = self._ctx.Queue()
        process = self._ctx.Process(
            target=_worker_main,
            args=(worker_id, task_queue, self.result_queue, self._env),
            daemon=True, name="repro-serve-worker-%d" % worker_id)
        process.start()
        return WorkerHandle(worker_id, process, task_queue)

    def by_id(self, worker_id):
        for worker in self.workers:
            if worker.worker_id == worker_id:
                return worker
        return None

    def idle_workers(self):
        return [worker for worker in self.workers
                if worker.job_id is None and worker.alive()]

    def assign(self, worker, job_id, spec_dict, trace_ctx=None):
        worker.job_id = job_id
        worker.assigned_at = time.monotonic()
        worker.kill_reason = None
        worker.task_queue.put((job_id, spec_dict, trace_ctx))

    def release(self, worker):
        """Mark the worker idle again (its job reached a terminal state)."""
        worker.job_id = None
        worker.assigned_at = None
        worker.jobs_done += 1

    def kill(self, worker, reason):
        """Terminate a worker (timeout enforcement); reap() collects it."""
        worker.kill_reason = reason
        if worker.alive():
            worker.process.terminate()

    def reap(self, respawn=True):
        """Collect dead workers; returns [(job_id, kill_reason), ...].

        Each dead worker is replaced by a fresh process (unless the pool
        is shutting down), so pool width is self-healing; its assigned
        job — if any — is handed back for the scheduler to retry or
        fail.
        """
        casualties = []
        for index, worker in enumerate(self.workers):
            if worker.alive():
                continue
            if worker.job_id is not None:
                casualties.append((worker.job_id, worker.kill_reason))
            worker.process.join(timeout=0)
            if respawn:
                self.workers[index] = self._spawn()
        if not respawn:
            self.workers = [worker for worker in self.workers
                            if worker.alive()]
        return casualties

    def utilization_now(self):
        busy = sum(1 for worker in self.workers if worker.job_id is not None)
        return busy / max(1, len(self.workers))

    def shutdown(self):
        """Stop all workers: sentinel, short join, then terminate."""
        for worker in self.workers:
            try:
                worker.task_queue.put(None)
            except (OSError, ValueError):
                pass
        deadline = time.monotonic() + _JOIN_SECONDS
        for worker in self.workers:
            worker.process.join(timeout=max(0.0,
                                            deadline - time.monotonic()))
            if worker.alive():
                worker.process.terminate()
                worker.process.join(timeout=1.0)
        # Unblock any thread parked on result_queue.get().
        try:
            self.result_queue.put(("pool-shutdown", -1, None))
        except (OSError, ValueError):
            pass
