"""Job scheduler: admission, single-flight dedup, dispatch, fan-out.

All scheduler state lives on the asyncio event loop thread; the server
bridges pool messages onto the loop before calling in here, so there is
no locking.  Policy implemented here:

**Admission** is bounded: a submission whose cells would push the number
of non-terminal jobs past ``max_pending`` is rejected whole with a
``backpressure`` error — explicit pushback instead of unbounded queueing.

**Single-flight dedup** is by content-addressed job key.  A submitted
cell whose key matches an in-flight job attaches to that job (both
submitters stream its events and receive the one result); a key matching
an already-completed job in the table is served from the server memo;
a key whose result sits in the runner's disk cache completes instantly
as ``cached``.  Only genuinely novel work reaches the worker pool.

**Failure policy**: a worker that *crashes* (killed, segfault, OOM) gets
its job requeued up to ``max_retries`` times; a job that exceeds
``job_timeout`` has its worker killed and is failed without retry (the
simulator is deterministic — it would time out again); a job whose
execution *raises* is failed immediately with the worker kept alive.
"""

import time
from collections import deque

from repro.obs.telemetry import Tracer
from repro.serve import protocol
from repro.serve.jobs import (
    CACHED,
    DONE,
    FAILED,
    QUEUED,
    RUNNING,
    TERMINAL,
)


class Backpressure(Exception):
    """Admission would exceed the bounded queue."""

    def __init__(self, in_flight, requested, max_pending):
        super().__init__(
            "queue full: %d job(s) in flight + %d requested > %d max "
            "(resubmit after some complete)"
            % (in_flight, requested, max_pending))
        self.in_flight = in_flight


class Job:
    """One scheduled simulation cell."""

    def __init__(self, job_id, key, spec):
        import asyncio
        self.id = job_id
        self.key = key
        self.spec = spec
        self.state = QUEUED
        self.attempts = 0
        self.submitted_at = time.monotonic()
        self.assigned_at = None
        self.finished_at = None
        self.payload = None
        self.error = None
        self.grids = set()
        self.done_event = asyncio.Event()
        self.span = None        # "serve.job" span (submitted -> terminal)
        self.queue_span = None  # "serve.queue" span (submitted -> assigned)

    @property
    def terminal(self):
        return self.state in TERMINAL

    def summary(self, payload=False):
        out = {
            "id": self.id,
            "key": self.key,
            "label": self.spec.label(),
            "spec": self.spec.as_dict(),
            "state": self.state,
            "attempts": self.attempts,
            "error": self.error,
        }
        if self.finished_at is not None:
            out["wall_seconds"] = round(
                self.finished_at - self.submitted_at, 6)
        if payload and self.payload is not None:
            out["payload"] = self.payload
        return out


class Scheduler:
    def __init__(self, pool, metrics, max_pending=256, job_timeout=300.0,
                 max_retries=1, log=None, tracer=None):
        self.pool = pool
        self.metrics = metrics
        self.tracer = tracer
        self.max_pending = max_pending
        self.job_timeout = job_timeout
        self.max_retries = max_retries
        self.log = log or (lambda text: None)
        self.jobs = {}       # job id -> Job (terminal jobs stay: memo)
        self.by_key = {}     # job key -> Job
        self.pending = deque()
        self.grids = {}      # grid id -> {"jobs": [...], "watchers": set()}
        self.draining = False
        self._job_ids = 0
        self._grid_ids = 0

    # -- admission ---------------------------------------------------------

    def in_flight(self):
        return sum(1 for job in self.jobs.values() if not job.terminal)

    def running(self):
        return sum(1 for job in self.jobs.values()
                   if job.state == RUNNING)

    def admit(self, cells, parent_span=None):
        """Admit one submission.

        ``cells`` is a list of ``(spec, key, cached_payload)`` triples —
        keys and cache probes are computed by the server off-loop (they
        compile kernels).  Returns ``(grid_id, jobs)``.  Raises
        :class:`Backpressure` when the novel cells don't fit.
        ``parent_span`` (the server's submit span) parents the per-job
        trace spans when tracing is on.
        """
        novel = [key for _, key, _ in cells
                 if key not in self.by_key]
        in_flight = self.in_flight()
        if in_flight + len(novel) > self.max_pending:
            self.metrics.submissions_rejected += 1
            raise Backpressure(in_flight, len(novel), self.max_pending)
        self.metrics.submissions += 1
        self._grid_ids += 1
        grid_id = "g%04d" % self._grid_ids
        grid = {"jobs": [], "watchers": set()}
        self.grids[grid_id] = grid
        jobs = []
        for spec, key, cached_payload in cells:
            job = self.by_key.get(key)
            if job is not None:
                if job.terminal:
                    self.metrics.memo_hits += 1
                    hit = "memo"
                else:
                    self.metrics.dedup_hits += 1
                    hit = "dedup"
                if self.tracer is not None and parent_span is not None:
                    # Instant marker: this submission coalesced onto an
                    # existing job whose trace lives elsewhere.
                    span = self.tracer.start_span(
                        "serve.%s" % hit, parent=parent_span,
                        attrs={"job": job.id, "state": job.state})
                    self.tracer.record(span)
            else:
                self._job_ids += 1
                job = Job("j%06d" % self._job_ids, key, spec)
                self.jobs[job.id] = job
                self.by_key[key] = job
                self.metrics.jobs_accepted += 1
                if self.tracer is not None:
                    job.span = self.tracer.start_span(
                        "serve.job", parent=parent_span,
                        attrs={"job": job.id, "label": spec.label()})
                if cached_payload is not None:
                    job.state = CACHED
                    job.payload = cached_payload
                    job.finished_at = time.monotonic()
                    job.done_event.set()
                    self.metrics.cache_hits += 1
                    if job.span is not None:
                        job.span.set_attr("state", CACHED)
                        self.tracer.record(job.span)
                else:
                    if self.tracer is not None:
                        job.queue_span = self.tracer.start_span(
                            "serve.queue", parent=job.span)
                    self.pending.append(job)
            job.grids.add(grid_id)
            if job.id not in grid["jobs"]:
                grid["jobs"].append(job.id)
            jobs.append(job)
        self.metrics.note_pending(len(self.pending))
        for job in jobs:
            # Announce current state into the new grid (queued for fresh
            # jobs; cached/done/… replay for deduped ones).
            self._emit(job, job.state, grids=(grid_id,))
        self._check_grid_done(grid_id)
        self.dispatch()
        return grid_id, jobs

    # -- dispatch ----------------------------------------------------------

    def dispatch(self):
        """Hand pending jobs to idle workers (call after any state change)."""
        while self.pending:
            idle = self.pool.idle_workers()
            if not idle:
                return
            job = self.pending.popleft()
            if job.terminal:
                continue
            worker = idle[0]
            job.assigned_at = time.monotonic()
            trace_ctx = None
            if job.queue_span is not None:
                job.queue_span.set_attr("worker", worker.worker_id)
                self.tracer.record(job.queue_span)
                job.queue_span = None
            if job.span is not None:
                # Propagated through the task queue into the worker
                # process, where it parents the "worker.execute" span.
                trace_ctx = Tracer.inject(job.span)
            self.pool.assign(worker, job.id, job.spec.as_dict(), trace_ctx)

    # -- pool message handlers --------------------------------------------

    def on_started(self, worker_id, job_id):
        job = self.jobs.get(job_id)
        if job is None or job.terminal:
            return
        job.state = RUNNING
        self._emit(job, "started", worker=worker_id,
                   attempt=job.attempts + 1)

    def on_done(self, worker_id, job_id, payload):
        job = self.jobs.get(job_id)
        worker = self.pool.by_id(worker_id)
        if worker is not None and worker.job_id == job_id:
            self.pool.release(worker)
        if job is None or job.terminal:
            self.dispatch()
            return  # late duplicate after a racy retry: drop
        if isinstance(payload, dict):
            # Worker-side spans ride the payload; they are trace
            # plumbing, not part of the job's result.
            worker_spans = payload.pop("trace_spans", None)
            if self.tracer is not None:
                self.tracer.ingest(worker_spans)
        now = time.monotonic()
        job.state = DONE
        job.payload = payload
        job.finished_at = now
        job.done_event.set()
        self._finish_span(job, DONE)
        self.metrics.executed += 1
        if job.assigned_at is not None:
            exec_seconds = now - job.assigned_at
            self.metrics.note_busy(exec_seconds)
            self.metrics.note_latency(now - job.submitted_at, exec_seconds)
        self._emit(job, "done", payload=payload)
        self._finish(job)

    def on_error(self, worker_id, job_id, message):
        job = self.jobs.get(job_id)
        worker = self.pool.by_id(worker_id)
        if worker is not None and worker.job_id == job_id:
            self.pool.release(worker)
        if job is None or job.terminal:
            self.dispatch()
            return
        self._fail(job, "execution failed: %s" % message)

    def on_casualty(self, job_id, kill_reason):
        """A worker died while owning ``job_id`` (reaped by the server)."""
        job = self.jobs.get(job_id)
        if job is None or job.terminal:
            self.dispatch()
            return
        if kill_reason == "timeout":
            self.metrics.timeouts += 1
            self._fail(job, "timed out after %.1fs (worker killed)"
                       % self.job_timeout)
            return
        job.attempts += 1
        if job.attempts > self.max_retries:
            self._fail(job, "worker crashed %d time(s); giving up"
                       % job.attempts)
            return
        self.metrics.retries += 1
        job.state = QUEUED
        job.assigned_at = None
        if self.tracer is not None:
            if job.span is not None:
                job.span.set_attr("retries", job.attempts)
            job.queue_span = self.tracer.start_span(
                "serve.queue", parent=job.span,
                attrs={"retry": job.attempts})
        self.pending.appendleft(job)
        self._emit(job, "retry", attempt=job.attempts + 1,
                   of=self.max_retries + 1)
        self.dispatch()

    def check_timeouts(self):
        """Kill workers whose job exceeded ``job_timeout`` (server tick)."""
        if self.job_timeout is None:
            return
        now = time.monotonic()
        for worker in self.pool.workers:
            if worker.job_id is None or worker.kill_reason is not None:
                continue
            job = self.jobs.get(worker.job_id)
            if job is None or job.assigned_at is None:
                continue
            if now - job.assigned_at > self.job_timeout:
                self.log("job %s exceeded %.1fs timeout; killing worker %d"
                         % (job.id, self.job_timeout, worker.worker_id))
                self.pool.kill(worker, "timeout")

    def _fail(self, job, message):
        job.state = FAILED
        job.error = message
        job.finished_at = time.monotonic()
        job.done_event.set()
        self._finish_span(job, FAILED, status="error", error=message)
        self.metrics.failed += 1
        self._emit(job, "failed", error=message)
        self._finish(job)

    def _finish_span(self, job, state, status=None, error=None):
        """Close a job's open trace spans at its terminal transition."""
        if self.tracer is None:
            return
        if job.queue_span is not None:
            self.tracer.record(job.queue_span, status=status)
            job.queue_span = None
        if job.span is not None:
            job.span.set_attr("state", state)
            if error is not None:
                job.span.set_attr("error", error)
            self.tracer.record(job.span, status=status)
            job.span = None

    def _finish(self, job):
        for grid_id in job.grids:
            self._emit_grid_progress(grid_id)
            self._check_grid_done(grid_id)
        self.dispatch()

    # -- event fan-out -----------------------------------------------------

    def watch(self, grid_id, queue):
        """Subscribe ``queue`` to a grid; replays current job states."""
        grid = self.grids.get(grid_id)
        if grid is None:
            return None
        grid["watchers"].add(queue)
        replay = [protocol.event(self.jobs[job_id].state,
                                 **self._job_fields(self.jobs[job_id]))
                  for job_id in grid["jobs"]]
        return replay

    def unwatch(self, grid_id, queue):
        grid = self.grids.get(grid_id)
        if grid is not None:
            grid["watchers"].discard(queue)

    def grid_done(self, grid_id):
        grid = self.grids.get(grid_id)
        if grid is None:
            return False
        return all(self.jobs[job_id].terminal for job_id in grid["jobs"])

    def _job_fields(self, job, **extra):
        fields = {"id": job.id, "key": job.key, "label": job.spec.label(),
                  "state": job.state}
        if job.state in (DONE, CACHED) and job.payload is not None:
            fields["payload"] = job.payload
        if job.error:
            fields["error"] = job.error
        fields.update(extra)
        return fields

    def _emit(self, job, name, grids=None, **extra):
        message = protocol.event(name, **self._job_fields(job, **extra))
        for grid_id in (grids if grids is not None else job.grids):
            self._push(grid_id, message)

    def _emit_grid_progress(self, grid_id):
        grid = self.grids.get(grid_id)
        if grid is None:
            return
        done = sum(1 for job_id in grid["jobs"]
                   if self.jobs[job_id].terminal)
        self._push(grid_id, protocol.event(
            "progress", grid=grid_id, done=done, total=len(grid["jobs"])))

    def _check_grid_done(self, grid_id):
        if self.grid_done(grid_id):
            grid = self.grids[grid_id]
            failed = sum(1 for job_id in grid["jobs"]
                         if self.jobs[job_id].state == FAILED)
            self._push(grid_id, protocol.event(
                "grid_done", grid=grid_id, jobs=len(grid["jobs"]),
                failed=failed))

    def _push(self, grid_id, message):
        grid = self.grids.get(grid_id)
        if grid is None:
            return
        for queue in list(grid["watchers"]):
            self.metrics.events_streamed += 1
            queue.put_nowait(message)

    # -- drain -------------------------------------------------------------

    def all_idle(self):
        return not self.pending and self.running() == 0 and \
            self.in_flight() == 0

    def job_table(self, payloads=False):
        return [self.jobs[job_id].summary(payload=payloads)
                for job_id in sorted(self.jobs)]
