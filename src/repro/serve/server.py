"""The asyncio TCP server: protocol ↔ scheduler ↔ worker pool.

Threading model: all scheduler/job state is touched only from the
asyncio event loop.  Two things run off-loop and bridge back in:

- a reader thread drains the pool's (blocking) result queue and posts
  each message onto the loop with ``call_soon_threadsafe``;
- job-key computation and disk-cache probes (they compile kernels —
  milliseconds, but real work) run in the default thread executor,
  which is also why ``repro.eval.runner``'s memo and counters are
  lock-protected.

A periodic monitor tick reaps crashed workers, enforces per-job
timeouts, and redispatches.  ``drain`` flips the server into
reject-new-work mode, waits for every in-flight job to reach a terminal
state, writes the service manifest through ``repro.obs``, answers the
draining client, and stops the loop — no result is ever dropped by a
shutdown.
"""

import asyncio
import os
import threading
import time

from repro.obs.telemetry import MetricsRegistry, Tracer
from repro.serve import protocol
from repro.serve.jobs import (
    FAILED,
    GridError,
    compute_key,
    expand_grid,
    probe_cache,
)
from repro.serve.metrics import ServeMetrics
from repro.serve.pool import WorkerPool
from repro.serve.scheduler import Backpressure, Scheduler

#: Monitor cadence: crash reap + timeout enforcement + dispatch.
TICK_SECONDS = 0.1


def default_workers():
    return max(1, (os.cpu_count() or 2) - 1)


class ServeServer:
    def __init__(self, host="127.0.0.1", port=protocol.DEFAULT_PORT,
                 workers=None, max_pending=256, job_timeout=300.0,
                 max_retries=1, verbose=False, metrics_interval=30.0):
        self.host = host
        self.port = port
        self.num_workers = workers or default_workers()
        self.max_pending = max_pending
        self.job_timeout = job_timeout
        self.max_retries = max_retries
        self.verbose = verbose
        self.registry = MetricsRegistry()
        self.metrics = ServeMetrics(registry=self.registry)
        self.tracer = Tracer(process="scheduler")
        self.metrics_interval = metrics_interval
        self._next_metrics_write = None
        self.pool = None
        self.scheduler = None
        self._server = None
        self._loop = None
        self._stop = None           # asyncio.Event: drain finished
        self._drained = None        # manifest path written at drain
        self._pump_thread = None
        self._monitor_task = None
        self._closing = False

    def log(self, text):
        if self.verbose:
            print("[serve] %s" % text, flush=True)

    # -- lifecycle ---------------------------------------------------------

    async def start(self):
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        self.pool = WorkerPool(self.num_workers)
        self.scheduler = Scheduler(self.pool, self.metrics,
                                   max_pending=self.max_pending,
                                   job_timeout=self.job_timeout,
                                   max_retries=self.max_retries,
                                   log=self.log, tracer=self.tracer)
        self.registry.gauge(
            "serve_queue_depth", help="jobs waiting for a worker",
            fn=lambda: len(self.scheduler.pending))
        self.registry.gauge(
            "serve_running_jobs", help="jobs currently on a worker",
            fn=lambda: self.scheduler.running())
        self.registry.gauge(
            "serve_workers", help="current pool width",
            fn=lambda: len(self.pool.workers))
        self.registry.gauge(
            "serve_worker_utilization",
            help="busy fraction of the pool right now",
            fn=lambda: round(self.pool.utilization_now(), 4))
        self._server = await asyncio.start_server(
            self._handle_client, self.host, self.port,
            limit=protocol.MAX_LINE_BYTES)
        self.port = self._server.sockets[0].getsockname()[1]
        self._pump_thread = threading.Thread(
            target=self._pump_results, name="repro-serve-pump", daemon=True)
        self._pump_thread.start()
        self._monitor_task = asyncio.ensure_future(self._monitor())
        print("repro serve listening on %s:%d (%d worker%s, "
              "max_pending=%d, job_timeout=%.0fs)"
              % (self.host, self.port, self.num_workers,
                 "" if self.num_workers == 1 else "s",
                 self.max_pending, self.job_timeout), flush=True)

    async def run_until_drained(self):
        await self._stop.wait()
        # Give drain replies (written by handlers woken by the same
        # event) a beat to flush before tearing the server down.
        await asyncio.sleep(0.3)
        await self.aclose()

    async def aclose(self):
        self._closing = True
        if self._monitor_task is not None:
            self._monitor_task.cancel()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self.pool is not None:
            await self._loop.run_in_executor(None, self.pool.shutdown)
        if self._pump_thread is not None:
            self._pump_thread.join(timeout=2.0)

    def request_drain(self):
        """Start refusing submissions; monitor completes the drain."""
        self.scheduler.draining = True
        self.log("drain requested (%d in flight)"
                 % self.scheduler.in_flight())

    # -- pool plumbing -----------------------------------------------------

    def _pump_results(self):
        """Reader thread: blocking queue → event loop."""
        while True:
            try:
                message = self.pool.result_queue.get()
            except (EOFError, OSError):
                return
            if message[0] == "pool-shutdown" or self._closing:
                return
            try:
                self._loop.call_soon_threadsafe(self._on_pool_message,
                                                message)
            except RuntimeError:
                return  # loop already closed mid-shutdown

    def _on_pool_message(self, message):
        kind = message[0]
        if kind == "started":
            self.scheduler.on_started(message[1], message[2])
        elif kind == "done":
            self.scheduler.on_done(message[1], message[2], message[3])
        elif kind == "error":
            self.scheduler.on_error(message[1], message[2], message[3])

    async def _monitor(self):
        while True:
            await asyncio.sleep(TICK_SECONDS)
            self.scheduler.check_timeouts()
            respawn = not (self.scheduler.draining
                           and self.scheduler.all_idle())
            for job_id, kill_reason in self.pool.reap(respawn=respawn):
                self.scheduler.on_casualty(job_id, kill_reason)
            self.scheduler.dispatch()
            self.metrics.note_pending(len(self.scheduler.pending))
            self._maybe_write_metrics()
            if self.scheduler.draining and self.scheduler.all_idle() \
                    and not self._stop.is_set():
                self._drained = self._write_manifest()
                self.log("drained; manifest at %s" % self._drained)
                self._stop.set()

    def _telemetry_path(self, filename):
        from repro.obs.manifest import manifest_dir
        return os.path.join(manifest_dir(), filename)

    def _maybe_write_metrics(self):
        """Append a registry snapshot to the NDJSON time series.

        A session leaves a ``serve_metrics.ndjson`` trail next to its
        manifest — one line every ``metrics_interval`` seconds — so
        queue depth and latency percentiles can be plotted over the
        session afterwards.  ``metrics_interval <= 0`` disables it.
        """
        if self.metrics_interval is None or self.metrics_interval <= 0:
            return
        now = time.monotonic()
        if self._next_metrics_write is not None \
                and now < self._next_metrics_write:
            return
        self._next_metrics_write = now + self.metrics_interval
        self.registry.write_snapshot(
            self._telemetry_path("serve_metrics.ndjson"))

    def _export_telemetry(self):
        """Drain-time sidecars: final metrics line, spans, Perfetto."""
        paths = {}
        metrics_path = self._telemetry_path("serve_metrics.ndjson")
        if self.registry.write_snapshot(metrics_path):
            paths["metrics_ndjson"] = metrics_path
        spans = self.tracer.to_dicts()
        if spans:
            trace_path = self._telemetry_path("serve_trace.ndjson")
            if self.tracer.to_ndjson(trace_path):
                paths["trace_ndjson"] = trace_path
            from repro.obs.perfetto import write_service_trace
            perfetto_path = self._telemetry_path("serve_trace.perfetto.json")
            if write_service_trace(spans, perfetto_path):
                paths["perfetto_trace"] = perfetto_path
        return paths

    def _write_manifest(self):
        """Service provenance on drain, via the obs manifest path.

        Best-effort (a read-only results dir must not fail the drain)
        but never silent: failures log one line and bump the
        ``serve_manifest_write_failures_total`` counter surfaced by the
        ``stats``/``metrics`` requests, ``repro top`` and the
        Prometheus exposition.
        """
        try:
            from repro.obs.manifest import write_service_manifest
            # write_service_manifest swallows filesystem errors and
            # returns None — count that path too, not just exceptions.
            path = write_service_manifest(
                self._stats_snapshot(),
                jobs=self.scheduler.job_table(payloads=False),
                telemetry=self._export_telemetry())
            reason = "results dir not writable" if path is None else None
        except Exception as exc:
            path = None
            reason = "%s: %s" % (type(exc).__name__, exc)
        if reason is not None:
            self.metrics.manifest_write_failures += 1
            self.log("warning: service manifest write failed (%s) — "
                     "drain provenance was not recorded" % reason)
        return path

    def _stats_snapshot(self):
        snapshot = self.metrics.snapshot(
            num_workers=len(self.pool.workers),
            pending=len(self.scheduler.pending),
            running=self.scheduler.running())
        snapshot["draining"] = self.scheduler.draining
        snapshot["host"] = self.host
        snapshot["port"] = self.port
        return snapshot

    # -- request handling --------------------------------------------------

    async def _handle_client(self, reader, writer):
        peer = writer.get_extra_info("peername")
        self.log("client connected: %s" % (peer,))
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    await self._send(writer, protocol.error(
                        None, protocol.E_BAD_REQUEST, "frame too long"))
                    break
                if not line:
                    break
                try:
                    request = protocol.decode(line)
                except protocol.ProtocolError as exc:
                    await self._send(writer, protocol.error(
                        None, protocol.E_BAD_REQUEST, str(exc)))
                    continue
                done = await self._dispatch_op(request, writer)
                if done:
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass
            self.log("client gone: %s" % (peer,))

    async def _send(self, writer, message):
        writer.write(protocol.encode(message))
        await writer.drain()

    async def _dispatch_op(self, request, writer):
        """Handle one request; returns True when the connection is done."""
        op = request.get("op")
        if op == "ping":
            await self._send(writer, protocol.reply(
                request, pong=True, version=protocol.PROTOCOL_VERSION))
        elif op == "submit":
            await self._op_submit(request, writer)
        elif op == "subscribe":
            grid_id = request.get("grid")
            if grid_id not in self.scheduler.grids:
                await self._send(writer, protocol.error(
                    request, protocol.E_UNKNOWN_GRID,
                    "unknown grid %r" % grid_id))
            else:
                await self._send(writer, protocol.reply(request,
                                                        grid=grid_id))
                await self._stream_grid(grid_id, writer)
        elif op == "jobs":
            await self._send(writer, protocol.reply(
                request, jobs=self.scheduler.job_table(
                    payloads=bool(request.get("payloads")))))
        elif op == "result":
            await self._op_result(request, writer)
        elif op == "stats":
            await self._send(writer, protocol.reply(
                request, stats=self._stats_snapshot(),
                workers=[worker.as_dict()
                         for worker in self.pool.workers]))
        elif op == "metrics":
            await self._send(writer, protocol.reply(
                request, exposition=self.registry.exposition(),
                metrics=self.registry.snapshot()))
        elif op == "drain":
            self.request_drain()
            await self._stop.wait()
            await self._send(writer, protocol.reply(
                request, drained=True, manifest=self._drained,
                stats=self._stats_snapshot()))
            return True
        else:
            await self._send(writer, protocol.error(
                request, protocol.E_BAD_REQUEST,
                "unknown op %r" % op))
        return False

    def _submit_span(self, request):
        """The root ``serve.submit`` span for one submission.

        When the client sent a ``trace`` context the span adopts the
        client's ids and submit timestamp (``process="client"``), so the
        whole trace starts on the client's clock; otherwise the server
        roots a fresh trace itself.
        """
        context = request.get("trace")
        ctx = Tracer.extract(context)
        if ctx is not None:
            start = context.get("start_unix")
            if not isinstance(start, (int, float)):
                start = None
            span = self.tracer.start_span(
                "serve.submit", trace_id=ctx["trace_id"],
                start=start, process="client")
            span.span_id = ctx["span_id"]
            return span
        return self.tracer.start_span("serve.submit")

    async def _op_submit(self, request, writer):
        if self.scheduler.draining:
            await self._send(writer, protocol.error(
                request, protocol.E_DRAINING,
                "server is draining; not accepting work"))
            return
        try:
            specs = expand_grid(request)
        except GridError as exc:
            self.metrics.submissions_rejected += 1
            await self._send(writer, protocol.error(
                request, protocol.E_BAD_REQUEST, str(exc)))
            return
        submit_span = self._submit_span(request)
        cells = await asyncio.get_running_loop().run_in_executor(
            None, self._prepare_cells, specs)
        try:
            grid_id, jobs = self.scheduler.admit(cells,
                                                 parent_span=submit_span)
        except Backpressure as exc:
            self.tracer.record(submit_span, status="error")
            await self._send(writer, protocol.error(
                request, protocol.E_BACKPRESSURE, str(exc)))
            return
        submit_span.set_attr("grid", grid_id)
        submit_span.set_attr("jobs", len(jobs))
        self.tracer.record(submit_span)
        await self._send(writer, protocol.reply(
            request, grid=grid_id,
            jobs=[job.summary() for job in jobs]))
        if request.get("stream"):
            await self._stream_grid(grid_id, writer)

    def _prepare_cells(self, specs):
        """Thread-side: content keys + disk-cache probes for a grid.

        Skips the (compile-costly) disk probe when the key already has an
        in-flight or completed job — the scheduler will reuse it anyway.
        """
        cells = []
        for spec in specs:
            key = compute_key(spec)
            cached = None
            if key not in self.scheduler.by_key:
                cached = probe_cache(spec)
            cells.append((spec, key, cached))
        return cells

    async def _stream_grid(self, grid_id, writer):
        queue = asyncio.Queue()
        replay = self.scheduler.watch(grid_id, queue)
        try:
            for message in replay:
                await self._send(writer, message)
            if self.scheduler.grid_done(grid_id):
                grid = self.scheduler.grids[grid_id]
                failed = sum(
                    1 for job_id in grid["jobs"]
                    if self.scheduler.jobs[job_id].state == FAILED)
                await self._send(writer, protocol.event(
                    "grid_done", grid=grid_id, jobs=len(grid["jobs"]),
                    failed=failed))
                return
            while True:
                message = await queue.get()
                await self._send(writer, message)
                if message.get("event") == "grid_done":
                    return
        finally:
            self.scheduler.unwatch(grid_id, queue)

    async def _op_result(self, request, writer):
        job_id = request.get("id")
        job = self.scheduler.jobs.get(job_id)
        if job is None:
            # Allow lookup by content key, the other natural handle.
            job = self.scheduler.by_key.get(job_id)
        if job is None:
            await self._send(writer, protocol.error(
                request, protocol.E_UNKNOWN_JOB,
                "unknown job %r" % job_id))
            return
        if not job.terminal and request.get("wait", True):
            timeout = request.get("timeout")
            try:
                await asyncio.wait_for(job.done_event.wait(), timeout)
            except asyncio.TimeoutError:
                pass
        await self._send(writer, protocol.reply(
            request, job=job.summary(payload=True)))


async def _amain(server):
    await server.start()

    loop = asyncio.get_running_loop()
    for signame in ("SIGINT", "SIGTERM"):
        import signal
        try:
            loop.add_signal_handler(getattr(signal, signame),
                                    server.request_drain)
        except (NotImplementedError, OSError):
            pass
    await server.run_until_drained()


def serve_main(host, port, workers=None, max_pending=256, job_timeout=300.0,
               max_retries=1, verbose=False, metrics_interval=30.0):
    """Blocking entry point for ``python -m repro serve``."""
    server = ServeServer(host=host, port=port, workers=workers,
                         max_pending=max_pending, job_timeout=job_timeout,
                         max_retries=max_retries, verbose=verbose,
                         metrics_interval=metrics_interval)
    try:
        asyncio.run(_amain(server))
    except KeyboardInterrupt:
        pass
    print("repro serve: drained and stopped "
          "(%d executed, %d cache hit(s), %d dedup hit(s))"
          % (server.metrics.executed, server.metrics.cache_hits,
             server.metrics.dedup_hits + server.metrics.memo_hits),
          flush=True)
    return 0
