"""Job model: specs, content-addressed keys, grid expansion, execution.

A *job* is one simulation cell — (benchmark, configuration, scale,
geometry overrides) — optionally lockstep-verified.  Its identity is a
content-addressed **job key** that reuses the experiment runner's
disk-cache machinery (:func:`repro.eval.runner.job_key`): the key covers
the compiled kernel binaries, the fully-resolved SM configuration, the
scale, and the simulator source digest.  Equal keys therefore guarantee
bit-identical statistics, which is what makes single-flight dedup and
cross-restart cache hits sound.

``kind="sleep"`` jobs exist for the service's own integration tests
(deterministic long-running work for exercising timeout, crash-retry,
and in-flight dedup); they never touch the simulator.
"""

import hashlib
import time
from dataclasses import dataclass, field

#: Geometry a ``verify`` job runs at unless the submission overrides it:
#: golden-model lockstep steps every lane in Python, so it uses the same
#: small sweep geometry as ``repro lockstep``.
VERIFY_GEOMETRY = dict(num_warps=4, num_lanes=4)

#: Job lifecycle states.  Terminal: done, cached, failed.
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
CACHED = "cached"
FAILED = "failed"
TERMINAL = (DONE, CACHED, FAILED)


@dataclass
class JobSpec:
    """What to run.  Wire/pool representation is :meth:`as_dict`."""

    kind: str = "eval"          # "eval" | "sleep"
    benchmark: str = ""
    config_name: str = "cheri_opt"
    scale: int = 1
    overrides: dict = field(default_factory=dict)
    verify: bool = False
    seconds: float = 0.0        # sleep jobs only
    tag: str = ""               # sleep jobs only (distinguishes cases)

    def as_dict(self):
        out = {"kind": self.kind}
        if self.kind == "sleep":
            out.update(seconds=self.seconds, tag=self.tag)
            return out
        out.update(benchmark=self.benchmark, config_name=self.config_name,
                   scale=self.scale, overrides=dict(self.overrides),
                   verify=self.verify)
        return out

    @classmethod
    def from_dict(cls, data):
        kind = data.get("kind", "eval")
        if kind == "sleep":
            return cls(kind="sleep", seconds=float(data.get("seconds", 0)),
                       tag=str(data.get("tag", "")))
        return cls(kind="eval",
                   benchmark=data["benchmark"],
                   config_name=data.get("config_name", "cheri_opt"),
                   scale=int(data.get("scale", 1)),
                   overrides=dict(data.get("overrides") or {}),
                   verify=bool(data.get("verify", False)))

    def label(self):
        if self.kind == "sleep":
            return "sleep(%.2gs)%s" % (self.seconds,
                                       " #%s" % self.tag if self.tag else "")
        text = "%s/%s/s%d" % (self.benchmark, self.config_name, self.scale)
        if self.overrides:
            text += "/" + ",".join("%s=%s" % kv
                                   for kv in sorted(self.overrides.items()))
        if self.verify:
            text += "/verified"
        return text


class GridError(ValueError):
    """A submission that cannot be expanded into jobs."""


def expand_grid(message):
    """A ``submit`` request body → list of :class:`JobSpec` cells.

    The grid is ``benchmarks × configs × scales``; ``overrides`` and
    ``verify`` apply to every cell.  Benchmark names are resolved
    case-insensitively; unknown names or configs raise
    :class:`GridError` (the whole submission is rejected — partial
    grids would make dedup accounting unreadable).
    """
    from repro.benchsuite import ALL_BENCHMARKS, BENCHMARK_NAMES
    from repro.eval.runner import config_for

    if message.get("kind") == "sleep":
        return [JobSpec(kind="sleep",
                        seconds=float(message.get("seconds", 0.0)),
                        tag=str(message.get("tag", "")))]
    folded = {name.lower(): name for name in ALL_BENCHMARKS}
    benchmarks = message.get("benchmarks") or list(BENCHMARK_NAMES)
    if not isinstance(benchmarks, list):
        raise GridError("benchmarks must be a list")
    resolved = []
    for name in benchmarks:
        actual = folded.get(str(name).lower())
        if actual is None:
            raise GridError("unknown benchmark %r (choose from %s)"
                            % (name, ", ".join(BENCHMARK_NAMES)))
        resolved.append(actual)
    configs = message.get("configs") or ["cheri_opt"]
    if not isinstance(configs, list):
        raise GridError("configs must be a list")
    scales = message.get("scales") or [int(message.get("scale", 1))]
    overrides = dict(message.get("overrides") or {})
    for key, value in overrides.items():
        if not isinstance(value, (int, bool, float)):
            raise GridError("override %r must be a scalar" % key)
    verify = bool(message.get("verify", False))
    if verify:
        merged = dict(VERIFY_GEOMETRY)
        merged.update(overrides)
        overrides = merged
    for config_name in configs:
        try:
            config_for(config_name, **overrides)
        except (ValueError, TypeError) as exc:
            raise GridError(str(exc))
    return [
        JobSpec(benchmark=name, config_name=config_name, scale=int(scale),
                overrides=dict(overrides), verify=verify)
        for name in resolved
        for config_name in configs
        for scale in scales
    ]


def compute_key(spec):
    """Content-addressed job key (hex) for one spec.

    Eval jobs reuse the runner's disk-cache key wholesale (plus a
    ``lockstep`` discriminator for verified runs, which execute under a
    checker and are not interchangeable with plain runs in the job
    table).  Compiling the kernels for the digest costs milliseconds —
    cheap insurance that a stale server can never serve results from
    edited sources.
    """
    if spec.kind == "sleep":
        digest = hashlib.sha256(
            b"sleep:%r:%r" % (spec.seconds, spec.tag.encode())).hexdigest()
        return "sleep-" + digest[:24]
    from repro.eval.runner import job_key
    key = job_key(spec.benchmark, spec.config_name, spec.scale,
                  **spec.overrides)
    return key + "-lockstep" if spec.verify else key


def probe_cache(spec):
    """Non-executing disk-cache probe → payload dict or ``None``.

    Verified and sleep jobs are never cache-served: a ``verify`` job's
    point is the fresh cross-checked execution.
    """
    if spec.kind != "eval" or spec.verify:
        return None
    from repro.eval.runner import probe_disk
    result = probe_disk(spec.benchmark, spec.config_name, spec.scale,
                        **spec.overrides)
    if result is None:
        return None
    payload = _payload_from_result(result)
    payload["cache_source"] = "disk"
    return payload


def _payload_from_result(result, lockstep=None):
    """A :class:`repro.eval.runner.RunResult` → JSON-able payload."""
    payload = {
        "benchmark": result.benchmark,
        "config": result.config_name,
        "mode": result.mode,
        "stats": result.stats.as_dict(),
        "cache_source": result.meta.source if result.meta else "memo",
        "sim_seconds": round(result.meta.wall_seconds, 6)
        if result.meta else 0.0,
    }
    if lockstep is not None:
        payload["lockstep"] = lockstep
    return payload


def execute_spec(spec_dict):
    """Worker-side execution of one job spec (runs in a pool process).

    Takes and returns plain dicts so the pool boundary stays
    pickle-trivial under the ``spawn`` start method.  Eval jobs go
    through :func:`repro.eval.runner.run_benchmark`, so every fresh
    simulation also lands in the shared disk cache — that is how a
    result computed by one worker becomes a ``cached`` hit for every
    later duplicate submission, across server restarts too.
    """
    spec = JobSpec.from_dict(spec_dict)
    if spec.kind == "sleep":
        time.sleep(spec.seconds)
        return {"slept": spec.seconds, "tag": spec.tag,
                "cache_source": "sim"}
    if spec.verify:
        from repro.check.lockstep import verified_run
        from repro.eval.runner import config_for
        overrides = dict(spec.overrides)
        num_warps = overrides.pop("num_warps", VERIFY_GEOMETRY["num_warps"])
        num_lanes = overrides.pop("num_lanes", VERIFY_GEOMETRY["num_lanes"])
        mode, _ = config_for(spec.config_name, num_warps=num_warps,
                             num_lanes=num_lanes, **overrides)
        start = time.perf_counter()
        stats, lockstep = verified_run(
            spec.benchmark, spec.config_name, scale=spec.scale,
            num_warps=num_warps, num_lanes=num_lanes, **overrides)
        return {
            "benchmark": spec.benchmark,
            "config": spec.config_name,
            "mode": mode,
            "stats": stats.as_dict(),
            "cache_source": "sim+lockstep",
            "sim_seconds": round(time.perf_counter() - start, 6),
            "lockstep": lockstep,
        }
    from repro.eval.runner import run_benchmark
    result = run_benchmark(spec.benchmark, spec.config_name, spec.scale,
                           **spec.overrides)
    return _payload_from_result(result)
