"""Synchronous client library for the simulation service.

Small on purpose: plain sockets + NDJSON, one connection per client
object, blocking semantics that match how experiment scripts and the
CLI want to talk to the server::

    from repro.serve import ServeClient

    with ServeClient(port=8741) as client:
        submission = client.submit(benchmarks=["VecAdd", "MatMul"],
                                   configs=["baseline", "cheri_opt"])
        for event in client.stream(submission["grid"]):
            print(event["event"], event.get("label"))
        print(client.stats()["stats"]["cache_hits"])

``submit_and_stream`` fuses submission and event streaming on one
connection (the submission is admitted before the reply is sent, so no
event can be missed).  Every reply with ``ok: false`` raises
:class:`ServeError` carrying the server's stable error ``code``.
"""

import os
import socket
import time

from repro.obs.telemetry import new_id
from repro.serve import protocol


class ServeError(RuntimeError):
    """An error reply from the server (or a dead connection)."""

    def __init__(self, message, code=None):
        super().__init__(message)
        self.code = code


def default_port():
    try:
        return int(os.environ.get("REPRO_SERVE_PORT", ""))
    except ValueError:
        return protocol.DEFAULT_PORT


class ServeClient:
    """One NDJSON connection to a ``repro serve`` server."""

    def __init__(self, host="127.0.0.1", port=None, timeout=None,
                 connect_timeout=5.0):
        self.host = host
        self.port = port if port is not None else default_port()
        self.timeout = timeout
        self._connect_timeout = connect_timeout
        self._sock = None
        self._stream_file = None

    # -- plumbing ----------------------------------------------------------

    def connect(self):
        if self._sock is None:
            self._sock = socket.create_connection(
                (self.host, self.port), timeout=self._connect_timeout)
            self._sock.settimeout(self.timeout)
            self._stream_file = self._sock.makefile("rb")
        return self

    def close(self):
        if self._sock is not None:
            try:
                self._sock.close()
            finally:
                self._sock = None
                self._stream_file = None

    def __enter__(self):
        return self.connect()

    def __exit__(self, *_exc):
        self.close()

    def _write(self, message):
        self.connect()
        try:
            self._sock.sendall(protocol.encode(message))
        except OSError as exc:
            raise ServeError("server connection lost: %s" % exc)

    def _read(self):
        line = self._stream_file.readline(protocol.MAX_LINE_BYTES)
        if not line:
            raise ServeError("server closed the connection")
        return protocol.decode(line)

    def _request(self, op, **fields):
        message = {"op": op}
        message.update(fields)
        self._write(message)
        reply = self._read()
        if reply.get("ok") is False:
            raise ServeError(reply.get("error", "request failed"),
                             code=reply.get("code"))
        return reply

    # -- requests ----------------------------------------------------------

    def ping(self):
        return self._request("ping")

    def stats(self):
        return self._request("stats")

    def metrics(self):
        """The server's metrics registry: Prometheus-style ``exposition``
        text plus a structured ``metrics`` snapshot."""
        return self._request("metrics")

    def jobs(self, payloads=False):
        return self._request("jobs", payloads=payloads)

    def result(self, job_id, wait=True, timeout=None):
        return self._request("result", id=job_id, wait=wait,
                             timeout=timeout)

    def drain(self):
        """Ask the server to finish everything and exit; blocks until
        drained."""
        return self._request("drain")

    @staticmethod
    def _trace_context():
        """A fresh root trace context stamped at submit time; the server
        roots the submission's span tree here, so traces start on the
        client's clock."""
        return {"trace_id": new_id(), "span_id": new_id(),
                "start_unix": round(time.time(), 6)}

    def submit(self, benchmarks=None, configs=None, scale=1, scales=None,
               overrides=None, verify=False, **extra):
        """Submit a grid; returns the submission reply (``grid``,
        ``jobs``)."""
        body = dict(benchmarks=benchmarks, configs=configs, scale=scale,
                    overrides=overrides or {}, verify=verify)
        if scales:
            body["scales"] = list(scales)
        body.update(extra)
        body.setdefault("trace", self._trace_context())
        return self._request("submit", **body)

    def submit_and_stream(self, **kwargs):
        """Submit with streaming: yields the submission reply first, then
        every lifecycle event through ``grid_done``."""
        body = dict(kwargs)
        body["stream"] = True
        body.setdefault("trace", self._trace_context())
        reply = self._request("submit", **body)
        yield reply
        while True:
            message = self._read()
            yield message
            if message.get("event") == "grid_done":
                return

    def stream(self, grid_id):
        """Subscribe to a grid: yields replayed states, then live events
        through ``grid_done``."""
        self._request("subscribe", grid=grid_id)
        while True:
            message = self._read()
            yield message
            if message.get("event") == "grid_done":
                return

    def run_grid(self, **kwargs):
        """Convenience: submit, stream to completion, return final job
        payloads keyed by job id (the blocking 'just run this' call)."""
        payloads = {}
        for message in self.submit_and_stream(**kwargs):
            if message.get("event") in ("done", "cached") and \
                    "payload" in message:
                payloads[message["id"]] = message["payload"]
            if message.get("event") == "failed":
                raise ServeError("job %s failed: %s"
                                 % (message.get("id"),
                                    message.get("error")))
        return payloads
