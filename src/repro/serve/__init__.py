"""``repro.serve`` — asynchronous simulation service.

A long-lived, stdlib-only job server that turns the one-shot experiment
runner into a design-space-exploration service:

- ``python -m repro serve``       — TCP + NDJSON job server
- ``python -m repro submit``      — submit a benchmark × config grid
- ``python -m repro jobs``        — job table / server stats / drain
- ``python -m repro result ID``   — fetch one job's result

Architecture (one module per concern):

``protocol``
    NDJSON wire format: one JSON object per line, requests carry ``op``,
    server pushes carry ``event``.
``jobs``
    Job specs, content-addressed job keys (reusing the runner's
    source-digest + disk-cache machinery), grid expansion, and the
    worker-side job execution.
``pool``
    Sharded multi-process worker pool with crash detection.
``scheduler``
    Bounded admission queue, single-flight dedup, retry/timeout policy,
    and lifecycle event fan-out to subscribers.
``metrics``
    Queue depth, dedup/cache hits, worker utilization, p50/p95 latency.
``server``
    The asyncio TCP server tying it all together, with graceful drain.
``client``
    Small synchronous client library (used by the CLI and tests).
"""

from repro.serve.client import ServeClient, ServeError
from repro.serve.jobs import JobSpec, expand_grid
from repro.serve.protocol import DEFAULT_PORT, PROTOCOL_VERSION

__all__ = [
    "ServeClient", "ServeError", "JobSpec", "expand_grid",
    "DEFAULT_PORT", "PROTOCOL_VERSION",
]
