"""NDJSON wire protocol for the simulation service.

Framing is one JSON object per ``\\n``-terminated line, UTF-8, in both
directions.  Client → server messages are *requests* and carry an
``op`` field; server → client messages are either *replies* (carry
``ok``) or *events* (carry ``event``).  Every reply to a request echoes
the request's ``seq`` when one was given, so clients may pipeline.

Requests
========

========== ==============================================================
op         payload
========== ==============================================================
ping       ``{}`` → ``{ok, pong, version}``
submit     ``{benchmarks, configs, scale|scales, overrides, verify,
           stream}`` → ``{ok, grid, jobs: [...]}`` then, with
           ``stream``, job events until ``grid_done``
subscribe  ``{grid}`` → replay of current job states, then live events
           until ``grid_done``
jobs       ``{}`` → ``{ok, jobs: [...]}`` (the full job table)
result     ``{id, wait}`` → ``{ok, job}`` (``wait`` blocks until the
           job is terminal)
stats      ``{}`` → ``{ok, stats}`` (metrics snapshot + worker table)
metrics    ``{}`` → ``{ok, exposition, metrics}`` — the session's full
           metrics registry as Prometheus text exposition plus a
           structured snapshot (histograms with bucket counts)
drain      ``{}`` → finishes in-flight jobs, then ``{ok, drained}``
           and server exit
========== ==============================================================

``submit`` additionally accepts an optional ``trace`` context
(``{trace_id, span_id, start_unix}``, ids from
:func:`repro.obs.telemetry.new_id`); when present the server roots the
submission's telemetry trace at the client's clock, so one job yields a
single connected client → scheduler → worker span tree.

Events: ``queued``, ``started``, ``progress``, ``cached``, ``retry``,
``done``, ``failed``, ``grid_done`` — each carries the job ``id`` (grid
events the ``grid``) and, for terminal events, the result payload.

Errors are replies with ``ok: false`` plus ``error`` (human-readable)
and ``code`` (stable machine tag: ``bad-request``, ``backpressure``,
``draining``, ``unknown-job``, ``unknown-grid``).
"""

import json

#: Bump on incompatible wire changes; echoed by ``ping``.
PROTOCOL_VERSION = 1

#: Default TCP port (override with ``REPRO_SERVE_PORT`` or ``--port``).
DEFAULT_PORT = 8741

#: Upper bound on one NDJSON line (a full suite submission with stats
#: payloads stays far below this).
MAX_LINE_BYTES = 4 * 1024 * 1024

#: Stable error codes.
E_BAD_REQUEST = "bad-request"
E_BACKPRESSURE = "backpressure"
E_DRAINING = "draining"
E_UNKNOWN_JOB = "unknown-job"
E_UNKNOWN_GRID = "unknown-grid"


class ProtocolError(ValueError):
    """A malformed frame (bad JSON, not an object, oversized line)."""


def encode(message):
    """One message → one NDJSON line (bytes, newline-terminated)."""
    return (json.dumps(message, sort_keys=True,
                       separators=(",", ":")) + "\n").encode("utf-8")


def decode(line):
    """One NDJSON line (bytes or str) → message dict."""
    if isinstance(line, bytes):
        if len(line) > MAX_LINE_BYTES:
            raise ProtocolError("frame exceeds %d bytes" % MAX_LINE_BYTES)
        line = line.decode("utf-8", "replace")
    text = line.strip()
    if not text:
        raise ProtocolError("empty frame")
    try:
        message = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ProtocolError("bad JSON frame: %s" % exc) from exc
    if not isinstance(message, dict):
        raise ProtocolError("frame must be a JSON object, got %s"
                            % type(message).__name__)
    return message


def reply(request, **fields):
    """A successful reply, echoing the request's ``seq`` if present."""
    message = {"ok": True}
    if isinstance(request, dict) and "seq" in request:
        message["seq"] = request["seq"]
    message.update(fields)
    return message


def error(request, code, text):
    """An error reply with a stable ``code``."""
    message = {"ok": False, "code": code, "error": text}
    if isinstance(request, dict) and "seq" in request:
        message["seq"] = request["seq"]
    return message


def event(name, **fields):
    """A server-push event frame."""
    message = {"event": name}
    message.update(fields)
    return message
