"""Server-side metrics: counters, gauges, and job-latency percentiles.

Everything is updated from the single asyncio event loop, so no locking
is needed; the pool's worker busy-time is fed in by the scheduler as
jobs start and finish.  ``snapshot()`` is what the ``stats`` request
returns and what the drain-time service manifest records.
"""

import time


def percentile(samples, fraction):
    """Nearest-rank percentile of ``samples`` (0 for an empty list)."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = min(len(ordered) - 1,
               max(0, int(round(fraction * (len(ordered) - 1)))))
    return ordered[rank]


class ServeMetrics:
    """One server session's counters."""

    #: Latency samples kept for percentiles (drop-oldest beyond this).
    MAX_SAMPLES = 4096

    def __init__(self, clock=time.monotonic):
        self._clock = clock
        self.started_at = clock()
        self.submissions = 0        # submit requests accepted
        self.submissions_rejected = 0   # backpressure / draining / bad
        self.jobs_accepted = 0      # unique jobs entering the table
        self.dedup_hits = 0         # submissions coalesced onto in-flight
        self.memo_hits = 0          # served from the server's job table
        self.cache_hits = 0         # served from the runner disk cache
        self.executed = 0           # jobs that ran on a worker
        self.failed = 0
        self.retries = 0            # crash-requeues
        self.timeouts = 0
        self.peak_pending = 0
        self.events_streamed = 0
        self._busy_seconds = 0.0    # summed worker-occupied time
        self._latencies = []        # submit -> terminal, seconds
        self._exec_seconds = []     # started -> terminal, seconds

    # -- feeders ----------------------------------------------------------

    def note_pending(self, depth):
        self.peak_pending = max(self.peak_pending, depth)

    def note_busy(self, seconds):
        self._busy_seconds += seconds

    def note_latency(self, queue_to_done, exec_seconds):
        for store, value in ((self._latencies, queue_to_done),
                             (self._exec_seconds, exec_seconds)):
            store.append(value)
            if len(store) > self.MAX_SAMPLES:
                del store[: len(store) - self.MAX_SAMPLES]

    # -- reporting --------------------------------------------------------

    def utilization(self, num_workers):
        """Worker-occupied fraction of the session so far (0..1)."""
        wall = max(self._clock() - self.started_at, 1e-9)
        return min(1.0, self._busy_seconds / (wall * max(num_workers, 1)))

    def snapshot(self, num_workers=0, pending=0, running=0):
        return {
            "uptime_seconds": round(self._clock() - self.started_at, 3),
            "submissions": self.submissions,
            "submissions_rejected": self.submissions_rejected,
            "jobs_accepted": self.jobs_accepted,
            "dedup_hits": self.dedup_hits,
            "memo_hits": self.memo_hits,
            "cache_hits": self.cache_hits,
            "executed": self.executed,
            "failed": self.failed,
            "retries": self.retries,
            "timeouts": self.timeouts,
            "queue_depth": pending,
            "running": running,
            "peak_pending": self.peak_pending,
            "events_streamed": self.events_streamed,
            "num_workers": num_workers,
            "worker_utilization": round(self.utilization(num_workers), 4),
            "busy_seconds": round(self._busy_seconds, 3),
            "latency_p50_seconds": round(
                percentile(self._latencies, 0.50), 6),
            "latency_p95_seconds": round(
                percentile(self._latencies, 0.95), 6),
            "exec_p50_seconds": round(
                percentile(self._exec_seconds, 0.50), 6),
            "exec_p95_seconds": round(
                percentile(self._exec_seconds, 0.95), 6),
            "completed_samples": len(self._latencies),
        }
