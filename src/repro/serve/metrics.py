"""Server-side metrics: counters, gauges, and job-latency histograms.

Everything is updated from the single asyncio event loop, so no locking
is needed; the pool's worker busy-time is fed in by the scheduler as
jobs start and finish.  ``snapshot()`` is what the ``stats`` request
returns and what the drain-time service manifest records.

Latency percentiles come from fixed-bucket streaming histograms
(:class:`repro.obs.telemetry.Histogram`), which replaced a drop-oldest
4096-sample reservoir: under a long session the reservoir forgot every
latency older than the last 4096 jobs, skewing p95/p99 toward whatever
the recent traffic looked like.  The histograms observe *every* job
ever completed in O(buckets) memory and report exact percentile bounds.

The plain integer counters remain the mutation API (the scheduler does
``metrics.executed += 1``) and double as the compatibility view; each
is also registered in the session's :class:`MetricsRegistry` as a
callback-backed instrument, so the ``metrics`` protocol request can
render the whole session as Prometheus text exposition without double
accounting.
"""

import time

from repro.obs.telemetry import MetricsRegistry


def percentile(samples, fraction):
    """Nearest-rank percentile of ``samples`` (0 for an empty list).

    Retained for ad-hoc analysis of explicit sample lists; the live
    session percentiles now come from streaming histograms.
    """
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = min(len(ordered) - 1,
               max(0, int(round(fraction * (len(ordered) - 1)))))
    return ordered[rank]


class ServeMetrics:
    """One server session's counters."""

    #: Integer counters mutated directly by the scheduler/server and
    #: mirrored into the registry as ``serve_<name>_total``.
    COUNTER_FIELDS = (
        ("submissions", "submit requests accepted"),
        ("submissions_rejected", "backpressure / draining / bad"),
        ("jobs_accepted", "unique jobs entering the table"),
        ("dedup_hits", "submissions coalesced onto in-flight jobs"),
        ("memo_hits", "served from the server's job table"),
        ("cache_hits", "served from the runner disk cache"),
        ("executed", "jobs that ran on a worker"),
        ("failed", "jobs that reached the failed state"),
        ("retries", "crash-requeues"),
        ("timeouts", "jobs killed for exceeding the timeout"),
        ("events_streamed", "lifecycle events pushed to watchers"),
        ("manifest_write_failures", "service manifests that failed to "
                                    "write (lost provenance)"),
    )

    def __init__(self, clock=time.monotonic, registry=None):
        self._clock = clock
        self.registry = registry if registry is not None \
            else MetricsRegistry()
        self.started_at = clock()
        for name, help_text in self.COUNTER_FIELDS:
            setattr(self, name, 0)
            self.registry.counter(
                "serve_%s_total" % name, help=help_text,
                fn=(lambda field=name: getattr(self, field)))
        self.peak_pending = 0
        self._busy_seconds = 0.0    # summed worker-occupied time
        self.registry.gauge("serve_peak_pending",
                            help="high-water mark of the admission queue",
                            fn=lambda: self.peak_pending)
        self.registry.counter("serve_busy_seconds_total",
                              help="summed worker-occupied seconds",
                              fn=lambda: round(self._busy_seconds, 6))
        self.registry.gauge("serve_uptime_seconds",
                            help="session age in seconds",
                            fn=lambda: round(self._clock()
                                             - self.started_at, 3))
        self.latency = self.registry.histogram(
            "serve_job_latency_seconds",
            help="submit to terminal state, seconds")
        self.exec_latency = self.registry.histogram(
            "serve_job_exec_seconds",
            help="worker assignment to terminal state, seconds")

    # -- feeders ----------------------------------------------------------

    def note_pending(self, depth):
        self.peak_pending = max(self.peak_pending, depth)

    def note_busy(self, seconds):
        self._busy_seconds += seconds

    def note_latency(self, queue_to_done, exec_seconds):
        self.latency.observe(queue_to_done)
        self.exec_latency.observe(exec_seconds)

    # -- reporting --------------------------------------------------------

    def utilization(self, num_workers):
        """Worker-occupied fraction of the session so far (0..1)."""
        wall = max(self._clock() - self.started_at, 1e-9)
        return min(1.0, self._busy_seconds / (wall * max(num_workers, 1)))

    def snapshot(self, num_workers=0, pending=0, running=0):
        snapshot = {
            "uptime_seconds": round(self._clock() - self.started_at, 3),
            "queue_depth": pending,
            "running": running,
            "peak_pending": self.peak_pending,
            "num_workers": num_workers,
            "worker_utilization": round(self.utilization(num_workers), 4),
            "busy_seconds": round(self._busy_seconds, 3),
            "latency_p50_seconds": round(self.latency.quantile(0.50), 6),
            "latency_p95_seconds": round(self.latency.quantile(0.95), 6),
            "latency_p99_seconds": round(self.latency.quantile(0.99), 6),
            "exec_p50_seconds": round(self.exec_latency.quantile(0.50), 6),
            "exec_p95_seconds": round(self.exec_latency.quantile(0.95), 6),
            "exec_p99_seconds": round(self.exec_latency.quantile(0.99), 6),
            "completed_samples": self.latency.count,
        }
        for name, _help in self.COUNTER_FIELDS:
            snapshot[name] = getattr(self, name)
        return snapshot
