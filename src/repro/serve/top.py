"""``repro top`` — live terminal dashboard for a running serve node.

Polls ``stats`` (queue/worker snapshot) and ``metrics`` (registry) over
one client connection and redraws an ANSI screen every interval:
uptime, worker utilization bar, queue depth with a sparkline of recent
history, dedup/cache hit rates, latency percentiles, and the per-worker
table.

The frame renderer is a pure function of the polled snapshots
(:func:`render_frame`), so tests can assert on a one-shot frame
(``repro top --once``) against a live server without a TTY.
"""

import time
from collections import deque

from repro.serve.client import ServeClient, ServeError

#: Queue-depth history kept for the sparkline.
HISTORY = 60

_SPARK_CHARS = "▁▂▃▄▅▆▇█"
_CLEAR = "\x1b[H\x1b[2J"


def sparkline(values, width=HISTORY):
    """Recent ``values`` as a block-character sparkline string."""
    values = list(values)[-width:]
    if not values:
        return ""
    top = max(max(values), 1)
    return "".join(
        _SPARK_CHARS[min(len(_SPARK_CHARS) - 1,
                         int(value / top * (len(_SPARK_CHARS) - 1)))]
        for value in values)


def meter(fraction, width=20):
    """A ``[####----]``-style utilization bar (ASCII: survives any TTY)."""
    fraction = min(1.0, max(0.0, fraction))
    filled = int(round(fraction * width))
    return "[%s%s]" % ("#" * filled, "-" * (width - filled))


def _rate(hits, total):
    return 100.0 * hits / total if total else 0.0


def render_frame(stats, workers, history=(), now=None):
    """One dashboard frame (a newline-joined string) from snapshots.

    ``stats`` is the ``stats`` reply's metrics snapshot, ``workers`` its
    worker table, ``history`` recent queue depths for the sparkline.
    """
    uptime = stats.get("uptime_seconds", 0.0)
    busy = sum(1 for worker in workers if worker.get("job"))
    width = max(1, len(workers) or stats.get("num_workers", 1))
    util_now = busy / width
    util_session = stats.get("worker_utilization", 0.0)
    submissions = stats.get("submissions", 0)
    dedup = stats.get("dedup_hits", 0)
    memo = stats.get("memo_hits", 0)
    cache = stats.get("cache_hits", 0)
    reused = dedup + memo + cache
    lines = [
        "repro top — %s:%s   uptime %7.1fs   %s"
        % (stats.get("host", "?"), stats.get("port", "?"), uptime,
           "DRAINING" if stats.get("draining") else "serving"),
        "",
        "workers  %d/%d busy  %s %3.0f%% now  (%.0f%% session)"
        % (busy, width, meter(util_now), 100 * util_now,
           100 * util_session),
        "queue    depth %-4d peak %-4d %s"
        % (stats.get("queue_depth", 0), stats.get("peak_pending", 0),
           sparkline(history)),
        "jobs     accepted %-5d executed %-5d failed %-3d retries %-3d"
        " timeouts %d"
        % (stats.get("jobs_accepted", 0), stats.get("executed", 0),
           stats.get("failed", 0), stats.get("retries", 0),
           stats.get("timeouts", 0)),
        "reuse    dedup %d  memo %d  disk-cache %d   — %.1f%% of %d"
        " submissions reused"
        % (dedup, memo, cache, _rate(reused, submissions), submissions),
        "latency  p50 %.3fs  p95 %.3fs  p99 %.3fs   (exec p50 %.3fs"
        "  p95 %.3fs  p99 %.3fs)"
        % (stats.get("latency_p50_seconds", 0.0),
           stats.get("latency_p95_seconds", 0.0),
           stats.get("latency_p99_seconds", 0.0),
           stats.get("exec_p50_seconds", 0.0),
           stats.get("exec_p95_seconds", 0.0),
           stats.get("exec_p99_seconds", 0.0)),
    ]
    manifest_failures = stats.get("manifest_write_failures", 0)
    if manifest_failures:
        lines.append("alerts   manifest writes failed: %d  (provenance "
                     "lost — check results dir permissions)"
                     % manifest_failures)
    lines += [
        "",
        "  %-4s %-7s %-6s %-14s %-9s %s"
        % ("id", "pid", "state", "job", "busy", "done"),
    ]
    for worker in workers:
        lines.append(
            "  %-4s %-7s %-6s %-14s %8.1fs %d"
            % (worker.get("worker_id"), worker.get("pid"),
               "busy" if worker.get("job") else "idle",
               (worker.get("job") or "-")[:14],
               worker.get("busy_seconds", 0.0),
               worker.get("jobs_done", 0)))
    stamp = time.strftime("%H:%M:%S",
                          time.localtime(now if now is not None
                                         else time.time()))
    lines.append("")
    lines.append("updated %s — ctrl-c to quit" % stamp)
    return "\n".join(lines)


def run_top(host, port, interval=1.0, iterations=None, once=False,
            out=None):
    """Poll a serve node and redraw the dashboard until interrupted.

    ``once`` prints a single frame with no cursor control and returns
    (what tests and scripted health checks use); ``iterations`` bounds
    the number of frames.  Returns 0, or 1 when the server is
    unreachable.
    """
    import sys
    out = out if out is not None else sys.stdout
    history = deque(maxlen=HISTORY)
    frames = 0
    try:
        with ServeClient(host=host, port=port) as client:
            while True:
                reply = client.stats()
                stats = reply.get("stats", {})
                workers = reply.get("workers", [])
                history.append(stats.get("queue_depth", 0))
                frame = render_frame(stats, workers, history)
                if once:
                    out.write(frame + "\n")
                    return 0
                out.write(_CLEAR + frame + "\n")
                out.flush()
                frames += 1
                if iterations is not None and frames >= iterations:
                    return 0
                time.sleep(interval)
    except (KeyboardInterrupt, BrokenPipeError):
        return 0
    except (ServeError, OSError) as exc:
        out.write("repro top: %s\n" % exc)
        return 1
