"""Transpose: tiled matrix transpose through padded shared memory."""

import math

from repro.benchsuite.base import Benchmark
from repro.nocl import i32, kernel, ptr


@kernel
def transpose_kernel(width: i32, tile: i32, src: ptr[i32], dst: ptr[i32]):
    # Padded tile (stride tile+1) avoids scratchpad bank conflicts on the
    # transposed read, the classic CUDA SDK trick.
    buf = shared(i32, 1089)  # supports tiles up to 32x32
    tx = threadIdx.x % tile
    ty = threadIdx.x // tile
    tiles_per_row = width // tile
    bx = (blockIdx.x % tiles_per_row) * tile
    by = (blockIdx.x // tiles_per_row) * tile
    buf[ty * (tile + 1) + tx] = src[(by + ty) * width + (bx + tx)]
    syncthreads()
    dst[(bx + ty) * width + (by + tx)] = buf[tx * (tile + 1) + ty]
    syncthreads()


class Transpose(Benchmark):
    name = "Transpose"
    description = "Matrix transpose"
    origin = "CUDA SDK samples"
    uses_shared = True

    def run(self, rt, scale=1):
        rng = self.rng()
        block = self.full_block(rt)
        tile = math.isqrt(block)
        if tile * tile != block:
            raise ValueError("Transpose needs a square thread count")
        width = tile * 4 * scale
        n = width * width
        src_host = [rng.randrange(-999, 999) for _ in range(n)]
        src = rt.alloc(i32, n)
        dst = rt.alloc(i32, n)
        rt.upload(src, src_host)
        grid = (width // tile) ** 2
        stats = rt.launch(transpose_kernel, grid, block,
                          [width, tile, src, dst])
        expect = [src_host[c * width + r]
                  for r in range(width) for c in range(width)]
        self.check(rt.download(dst), expect, "transposed matrix")
        return stats
