"""Histogram: 256-bin byte histogram in shared memory (paper Figure 3)."""

from repro.benchsuite.base import Benchmark
from repro.nocl import i32, kernel, ptr, u8


@kernel
def histogram_kernel(n: i32, data: ptr[u8], out: ptr[i32]):
    bins = shared(i32, 256)
    # Initialise bins.
    i = threadIdx.x
    while i < 256:
        bins[i] = 0
        i += blockDim.x
    syncthreads()
    # Update bins.
    i = threadIdx.x
    while i < n:
        atomic_add(bins, data[i], 1)
        i += blockDim.x
    syncthreads()
    # Write bins to global memory.
    i = threadIdx.x
    while i < 256:
        out[i] = bins[i]
        i += blockDim.x


class Histogram(Benchmark):
    name = "Histogram"
    description = "256-bin histogram calculation"
    origin = "CUDA SDK samples"
    uses_shared = True

    def run(self, rt, scale=1):
        rng = self.rng()
        n = 4096 * scale
        data = [rng.randrange(256) for _ in range(n)]
        buf = rt.alloc(u8, n)
        out = rt.alloc(i32, 256)
        rt.upload(buf, data)
        # Single thread block, as in the paper's Figure 3 kernel.
        block = self.full_block(rt)
        stats = rt.launch(histogram_kernel, 1, block, [n, buf, out])
        expect = [0] * 256
        for value in data:
            expect[value] += 1
        self.check(rt.download(out), expect, "bins")
        return stats
