"""MatVecMul: dense matrix-vector multiplication, one row per thread."""

from repro.benchsuite.base import Benchmark
from repro.nocl import i32, kernel, ptr


@kernel
def matvecmul_kernel(rows: i32, cols: i32, mat: ptr[i32], vec: ptr[i32],
                     out: ptr[i32]):
    r = threadIdx.x + blockIdx.x * blockDim.x
    while r < rows:
        acc = 0
        c = 0
        while c < cols:
            acc += mat[r * cols + c] * vec[c]
            c += 1
        out[r] = acc
        r += blockDim.x * gridDim.x


class MatVecMul(Benchmark):
    name = "MatVecMul"
    description = "Matrix x vector multiplication"
    origin = "NVIDIA OpenCL SDK samples"

    def run(self, rt, scale=1):
        rng = self.rng()
        rows = 64 * scale
        cols = 48
        mat_host = [rng.randrange(-9, 9) for _ in range(rows * cols)]
        vec_host = [rng.randrange(-9, 9) for _ in range(cols)]
        mat = rt.alloc(i32, rows * cols)
        vec = rt.alloc(i32, cols)
        out = rt.alloc(i32, rows)
        rt.upload(mat, mat_host)
        rt.upload(vec, vec_host)
        block = self.default_block(rt)
        grid = max(2, rt.config.num_threads // block)
        stats = rt.launch(matvecmul_kernel, grid, block,
                          [rows, cols, mat, vec, out])
        expect = [
            sum(mat_host[r * cols + c] * vec_host[c] for c in range(cols))
            for r in range(rows)
        ]
        self.check(rt.download(out), expect, "product")
        return stats
