"""StrStencil: stripe-based stencil, straight from global memory."""

from repro.benchsuite.base import Benchmark
from repro.nocl import i32, kernel, ptr


@kernel
def strstencil_kernel(width: i32, height: i32, src: ptr[i32],
                      dst: ptr[i32]):
    col = threadIdx.x + blockIdx.x * blockDim.x
    while col < width:
        r = 0
        while r < height:
            acc = 2 * src[r * width + col]
            if r > 0:
                acc += src[(r - 1) * width + col]
            if r < height - 1:
                acc += src[(r + 1) * width + col]
            dst[r * width + col] = acc
            r += 1
        col += blockDim.x * gridDim.x


class StrStencil(Benchmark):
    name = "StrStencil"
    description = "Stripe-based stencil computation"
    origin = "In house (SIMTight distribution)"

    def run(self, rt, scale=1):
        rng = self.rng()
        width = 64 * scale
        height = 24
        n = width * height
        src_host = [rng.randrange(-100, 100) for _ in range(n)]
        src = rt.alloc(i32, n)
        dst = rt.alloc(i32, n)
        rt.upload(src, src_host)
        block = self.default_block(rt)
        grid = max(2, rt.config.num_threads // block)
        stats = rt.launch(strstencil_kernel, grid, block,
                          [width, height, src, dst])
        expect = []
        for r in range(height):
            for c in range(width):
                acc = 2 * src_host[r * width + c]
                if r > 0:
                    acc += src_host[(r - 1) * width + c]
                if r < height - 1:
                    acc += src_host[(r + 1) * width + c]
                expect.append(acc)
        got = rt.download(dst)
        expect_rowmajor = [expect[r * width + c]
                           for r in range(height) for c in range(width)]
        self.check(got, expect_rowmajor, "stencil output")
        return stats
