"""VecGCD: element-wise greatest common divisor (divergent inner loops)."""

import math

from repro.benchsuite.base import Benchmark
from repro.nocl import i32, kernel, ptr


@kernel
def vecgcd_kernel(n: i32, a: ptr[i32], b: ptr[i32], out: ptr[i32]):
    i = threadIdx.x + blockIdx.x * blockDim.x
    while i < n:
        x = a[i]
        y = b[i]
        while y != 0:
            t = y
            y = x % y
            x = t
        out[i] = x
        i += blockDim.x * gridDim.x


class VecGCD(Benchmark):
    name = "VecGCD"
    description = "Vectorised greatest common divisor"
    origin = "In house (SIMTight distribution)"

    def run(self, rt, scale=1):
        rng = self.rng()
        n = 512 * scale
        a_host = [rng.randrange(1, 5000) for _ in range(n)]
        b_host = [rng.randrange(1, 5000) for _ in range(n)]
        a = rt.alloc(i32, n)
        b = rt.alloc(i32, n)
        out = rt.alloc(i32, n)
        rt.upload(a, a_host)
        rt.upload(b, b_host)
        block = self.default_block(rt)
        grid = max(2, rt.config.num_threads // block)
        stats = rt.launch(vecgcd_kernel, grid, block, [n, a, b, out])
        self.check(rt.download(out),
                   [math.gcd(x, y) for x, y in zip(a_host, b_host)], "gcd")
        return stats
