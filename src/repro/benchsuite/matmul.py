"""MatMul: tiled single-precision matrix multiplication in shared memory."""

import math

from repro.benchsuite.base import Benchmark
from repro.nocl import f32, i32, kernel, ptr


@kernel
def matmul_kernel(n: i32, tile: i32, a: ptr[f32], b: ptr[f32], c: ptr[f32]):
    ta = shared(f32, 1024)
    tb = shared(f32, 1024)
    tx = threadIdx.x % tile
    ty = threadIdx.x // tile
    tiles = n // tile
    brow = (blockIdx.x // tiles) * tile
    bcol = (blockIdx.x % tiles) * tile
    acc = 0.0
    m = 0
    while m < tiles:
        ta[ty * tile + tx] = a[(brow + ty) * n + (m * tile + tx)]
        tb[ty * tile + tx] = b[(m * tile + ty) * n + (bcol + tx)]
        syncthreads()
        k = 0
        while k < tile:
            acc += ta[ty * tile + k] * tb[k * tile + tx]
            k += 1
        syncthreads()
        m += 1
    c[(brow + ty) * n + (bcol + tx)] = acc


class MatMul(Benchmark):
    name = "MatMul"
    description = "Matrix x matrix multiplication"
    origin = "CUDA SDK samples"
    uses_shared = True

    def run(self, rt, scale=1):
        rng = self.rng()
        block = self.full_block(rt)
        tile = math.isqrt(block)
        if tile * tile != block:
            raise ValueError("MatMul needs a square thread count")
        n = tile * 3
        a_host = [float(rng.randrange(-4, 5)) for _ in range(n * n)]
        b_host = [float(rng.randrange(-4, 5)) for _ in range(n * n)]
        a = rt.alloc(f32, n * n)
        b = rt.alloc(f32, n * n)
        c = rt.alloc(f32, n * n)
        rt.upload(a, a_host)
        rt.upload(b, b_host)
        grid = (n // tile) ** 2
        stats = rt.launch(matmul_kernel, grid, block, [n, tile, a, b, c])
        expect = [
            sum(a_host[r * n + k] * b_host[k * n + col] for k in range(n))
            for r in range(n) for col in range(n)
        ]
        self.check_close(rt.download(c), expect, "product")
        return stats
