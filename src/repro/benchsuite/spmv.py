"""SPMV: sparse matrix-vector multiplication in CSR form (Bell & Garland)."""

from repro.benchsuite.base import Benchmark
from repro.nocl import i32, kernel, ptr


@kernel
def spmv_kernel(rows: i32, rowptr: ptr[i32], cols: ptr[i32], vals: ptr[i32],
                x: ptr[i32], y: ptr[i32]):
    r = threadIdx.x + blockIdx.x * blockDim.x
    while r < rows:
        acc = 0
        p = rowptr[r]
        end = rowptr[r + 1]
        while p < end:
            acc += vals[p] * x[cols[p]]
            p += 1
        y[r] = acc
        r += blockDim.x * gridDim.x


class SPMV(Benchmark):
    name = "SPMV"
    description = "Sparse matrix x vector multiplication (CSR, scalar rows)"
    origin = "Bell & Garland, NVIDIA research report"

    def run(self, rt, scale=1):
        rng = self.rng()
        rows = 96 * scale
        cols_n = 96
        rowptr_host = [0]
        cols_host, vals_host = [], []
        for _ in range(rows):
            nnz = rng.randrange(1, 9)  # irregular rows -> divergence
            picks = sorted(rng.sample(range(cols_n), nnz))
            cols_host.extend(picks)
            vals_host.extend(rng.randrange(-9, 9) for _ in range(nnz))
            rowptr_host.append(len(cols_host))
        x_host = [rng.randrange(-9, 9) for _ in range(cols_n)]

        rowptr = rt.alloc(i32, rows + 1)
        colbuf = rt.alloc(i32, len(cols_host))
        valbuf = rt.alloc(i32, len(vals_host))
        x = rt.alloc(i32, cols_n)
        y = rt.alloc(i32, rows)
        rt.upload(rowptr, rowptr_host)
        rt.upload(colbuf, cols_host)
        rt.upload(valbuf, vals_host)
        rt.upload(x, x_host)
        block = self.default_block(rt)
        grid = max(2, rt.config.num_threads // block)
        stats = rt.launch(spmv_kernel, grid, block,
                          [rows, rowptr, colbuf, valbuf, x, y])
        expect = []
        for r in range(rows):
            lo, hi = rowptr_host[r], rowptr_host[r + 1]
            expect.append(sum(vals_host[p] * x_host[cols_host[p]]
                              for p in range(lo, hi)))
        self.check(rt.download(y), expect, "y")
        return stats
