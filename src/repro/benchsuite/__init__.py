"""The NoCL benchmark suite (paper Table 1), ported to the Python DSL.

Fourteen CUDA-style kernels, each with a host-side reference check (the
"self test" of the SIMTight distribution).  A benchmark's ``run(rt,
scale)`` allocates data on the given :class:`repro.nocl.NoCLRuntime`,
launches its kernel(s), verifies the results against a pure-Python
reference, and returns the accumulated SM stats.

Kernels that use shared local memory launch with one thread block
occupying the whole SM (block slots share the scratchpad in this
simulator), matching the paper's Histogram formulation.
"""

from repro.benchsuite import (
    bitonic,
    blkstencil,
    histogram,
    matmul,
    matvecmul,
    motionest,
    reduce_,
    scan,
    spmv,
    strstencil,
    transpose,
    vecadd,
    vecgcd,
)

#: name -> benchmark object, in the paper's Table 1 order.
ALL_BENCHMARKS = {
    bench.name: bench
    for bench in (
        vecadd.VecAdd(),
        histogram.Histogram(),
        reduce_.Reduce(),
        scan.Scan(),
        transpose.Transpose(),
        matvecmul.MatVecMul(),
        matmul.MatMul(),
        bitonic.BitonicSmall(),
        bitonic.BitonicLarge(),
        spmv.SPMV(),
        blkstencil.BlkStencil(),
        strstencil.StrStencil(),
        vecgcd.VecGCD(),
        motionest.MotionEst(),
    )
}

BENCHMARK_NAMES = tuple(ALL_BENCHMARKS)

__all__ = ["ALL_BENCHMARKS", "BENCHMARK_NAMES"]
