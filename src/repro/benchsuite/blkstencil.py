"""BlkStencil: block-based stencil with the pointer-select pattern.

The paper (section 4.3) observes that BlkStencil's compiler transforms an
if/else around two loads into a *pointer select* — one pointer into global
memory, one into shared local memory — turning control-flow divergence
into pointer-value (capability-metadata) divergence.  This port expresses
that select directly: lanes at a tile edge read their neighbour through
the global pointer while interior lanes read through the shared-tile
pointer, so one register holds capabilities with different bounds across
the warp.  It is the only benchmark whose metadata ends up in the VRF
(Figure 10) and the execution-time outlier of Figure 13.
"""

from repro.benchsuite.base import Benchmark
from repro.nocl import i32, kernel, ptr


@kernel
def blkstencil_kernel(n: i32, src: ptr[i32], dst: ptr[i32]):
    tile = shared(i32, 1024)
    base = blockIdx.x * blockDim.x
    i = threadIdx.x
    g = base + i
    if g < n:
        tile[i] = src[g]
    syncthreads()
    if g < n:
        acc = 2 * tile[i]
        if g > 0:
            # Interior lanes read the shared tile; the edge lane reads
            # global memory: a per-lane pointer select.
            left = tile if i > 0 else src
            li = i - 1 if i > 0 else g - 1
            acc += left[li]
        if g < n - 1:
            right = tile if i < blockDim.x - 1 else src
            ri = i + 1 if i < blockDim.x - 1 else g + 1
            acc += right[ri]
        dst[g] = acc
    syncthreads()


class BlkStencil(Benchmark):
    name = "BlkStencil"
    description = "Block-based stencil computation"
    origin = "In house (SIMTight distribution)"
    uses_shared = True

    def run(self, rt, scale=1):
        rng = self.rng()
        block = self.full_block(rt)
        n = block * 8 * scale
        src_host = [rng.randrange(-100, 100) for _ in range(n)]
        src = rt.alloc(i32, n)
        dst = rt.alloc(i32, n)
        rt.upload(src, src_host)
        grid = (n + block - 1) // block
        stats = rt.launch(blkstencil_kernel, grid, block, [n, src, dst])
        expect = []
        for g in range(n):
            acc = 2 * src_host[g]
            if g > 0:
                acc += src_host[g - 1]
            if g < n - 1:
                acc += src_host[g + 1]
            expect.append(acc)
        self.check(rt.download(dst), expect, "stencil output")
        return stats
