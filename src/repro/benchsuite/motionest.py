"""MotionEst: exhaustive block-matching motion estimation (SAD search)."""

from repro.benchsuite.base import Benchmark
from repro.nocl import i32, kernel, ptr, u8


@kernel
def motionest_kernel(width: i32, height: i32, bsize: i32, swin: i32,
                     cur: ptr[u8], ref: ptr[u8], best: ptr[i32]):
    nbx = width // bsize
    nby = height // bsize
    blk = threadIdx.x + blockIdx.x * blockDim.x
    while blk < nbx * nby:
        bx = (blk % nbx) * bsize
        by = (blk // nbx) * bsize
        best_sad = 1 << 30
        best_mv = 0
        for dy in range(0 - swin, swin + 1):
            for dx in range(0 - swin, swin + 1):
                x0 = bx + dx
                y0 = by + dy
                if x0 >= 0 and y0 >= 0 and x0 + bsize <= width and \
                        y0 + bsize <= height:
                    sad = 0
                    for yy in range(bsize):
                        for xx in range(bsize):
                            d = cur[(by + yy) * width + bx + xx] - \
                                ref[(y0 + yy) * width + x0 + xx]
                            sad += max_(d, 0 - d)
                    if sad < best_sad:
                        best_sad = sad
                        best_mv = (dy + swin) * (2 * swin + 1) + (dx + swin)
        best[blk] = best_mv
        blk += blockDim.x * gridDim.x


class MotionEst(Benchmark):
    name = "MotionEst"
    description = "Motion estimation (exhaustive SAD block search)"
    origin = "In house (SIMTight distribution)"

    def run(self, rt, scale=1):
        rng = self.rng()
        width, height = 32 * scale, 16
        bsize, swin = 4, 2
        cur_host = [rng.randrange(256) for _ in range(width * height)]
        # The reference frame is the current frame shifted by (1, -1) plus
        # noise, so the search has a meaningful minimum.
        ref_host = list(cur_host)
        for y in range(height):
            for x in range(width):
                sx, sy = min(width - 1, x + 1), max(0, y - 1)
                ref_host[y * width + x] = (cur_host[sy * width + sx]
                                           + rng.randrange(3)) % 256
        cur = rt.alloc(u8, width * height)
        ref = rt.alloc(u8, width * height)
        best = rt.alloc(i32, (width // bsize) * (height // bsize))
        rt.upload(cur, cur_host)
        rt.upload(ref, ref_host)
        block = self.default_block(rt)
        grid = max(2, rt.config.num_threads // block)
        stats = rt.launch(motionest_kernel, grid, block,
                          [width, height, bsize, swin, cur, ref, best])
        expect = self._reference(width, height, bsize, swin,
                                 cur_host, ref_host)
        self.check(rt.download(best), expect, "motion vectors")
        return stats

    @staticmethod
    def _reference(width, height, bsize, swin, cur, ref):
        out = []
        for by in range(0, height, bsize):
            for bx in range(0, width, bsize):
                best_sad, best_mv = 1 << 30, 0
                for dy in range(-swin, swin + 1):
                    for dx in range(-swin, swin + 1):
                        x0, y0 = bx + dx, by + dy
                        if not (0 <= x0 and 0 <= y0
                                and x0 + bsize <= width
                                and y0 + bsize <= height):
                            continue
                        sad = sum(
                            abs(cur[(by + yy) * width + bx + xx]
                                - ref[(y0 + yy) * width + x0 + xx])
                            for yy in range(bsize) for xx in range(bsize)
                        )
                        if sad < best_sad:
                            best_sad, best_mv = sad, \
                                (dy + swin) * (2 * swin + 1) + (dx + swin)
                out.append(best_mv)
        return out
