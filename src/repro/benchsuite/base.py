"""Shared benchmark machinery."""

import random
import zlib


class VerificationError(AssertionError):
    """A benchmark's device results disagree with the host reference."""


class Benchmark:
    """Base class: one Table 1 benchmark.

    Subclasses set ``name``/``description``/``origin`` and implement
    ``run(rt, scale)``; ``scale`` multiplies the default problem size.
    """

    name = None
    description = None
    origin = None
    #: does the kernel use shared local memory (forces single-block-slot
    #: launches in this simulator)?
    uses_shared = False

    def run(self, rt, scale=1):
        raise NotImplementedError

    def rng(self):
        """Deterministic per-benchmark random stream (reproducible runs).

        Seeded by CRC32 of the benchmark name, not ``hash()``: string
        hashing is randomised per process, and the on-disk result cache
        needs identical inputs (hence identical simulated statistics) from
        every process that runs the same benchmark.
        """
        return random.Random(zlib.crc32(self.name.encode("utf-8")))

    def full_block(self, rt):
        """blockDim occupying the entire SM (for shared-memory kernels)."""
        return rt.config.num_threads

    def default_block(self, rt):
        """A reasonable blockDim for kernels without shared memory."""
        cfg = rt.config
        return min(cfg.num_threads, max(cfg.num_lanes, 16))

    def check(self, got, expect, what):
        if got != expect:
            mismatches = [
                (i, g, e) for i, (g, e) in enumerate(zip(got, expect))
                if g != e
            ][:5]
            raise VerificationError(
                "%s: %s mismatch (first diffs: %s)"
                % (self.name, what, mismatches))

    def check_close(self, got, expect, what, tol=1e-4):
        for i, (g, e) in enumerate(zip(got, expect)):
            if abs(g - e) > tol * max(1.0, abs(e)):
                raise VerificationError(
                    "%s: %s mismatch at %d: %r vs %r"
                    % (self.name, what, i, g, e))
