"""Bitonic sorters: in-shared-memory (small) and multi-pass global (large)."""

from repro.benchsuite.base import Benchmark
from repro.nocl import i32, kernel, ptr


@kernel
def bitonic_small_kernel(n: i32, data: ptr[i32], out: ptr[i32]):
    keys = shared(i32, 1024)
    i = threadIdx.x
    while i < n:
        keys[i] = data[i]
        i += blockDim.x
    syncthreads()
    k = 2
    while k <= n:
        j = k >> 1
        while j > 0:
            i = threadIdx.x
            while i < n:
                ixj = i ^ j
                if ixj > i:
                    a = keys[i]
                    b = keys[ixj]
                    if (i & k) == 0:
                        if a > b:
                            keys[i] = b
                            keys[ixj] = a
                    else:
                        if a < b:
                            keys[i] = b
                            keys[ixj] = a
                i += blockDim.x
            syncthreads()
            j = j >> 1
        k = k << 1
    i = threadIdx.x
    while i < n:
        out[i] = keys[i]
        i += blockDim.x


@kernel
def bitonic_pass_kernel(n: i32, k: i32, j: i32, data: ptr[i32]):
    i = threadIdx.x + blockIdx.x * blockDim.x
    while i < n:
        ixj = i ^ j
        if ixj > i:
            a = data[i]
            b = data[ixj]
            if (i & k) == 0:
                if a > b:
                    data[i] = b
                    data[ixj] = a
            else:
                if a < b:
                    data[i] = b
                    data[ixj] = a
        i += blockDim.x * gridDim.x


class BitonicSmall(Benchmark):
    name = "BitonicSm"
    description = "Bitonic sorter (small arrays, shared memory)"
    origin = "NVIDIA OpenCL SDK samples"
    uses_shared = True

    def run(self, rt, scale=1):
        rng = self.rng()
        n = 256  # power of two, fits in shared memory
        data = [rng.randrange(0, 10000) for _ in range(n)]
        buf = rt.alloc(i32, n)
        out = rt.alloc(i32, n)
        rt.upload(buf, data)
        block = self.full_block(rt)
        stats = rt.launch(bitonic_small_kernel, 1, block, [n, buf, out])
        self.check(rt.download(out), sorted(data), "sorted keys")
        return stats


class BitonicLarge(Benchmark):
    name = "BitonicLa"
    description = "Bitonic sorter (large arrays, one launch per pass)"
    origin = "NVIDIA OpenCL SDK samples"

    def run(self, rt, scale=1):
        rng = self.rng()
        n = 512 * scale
        data = [rng.randrange(0, 1 << 30) for _ in range(n)]
        buf = rt.alloc(i32, n)
        rt.upload(buf, data)
        block = self.default_block(rt)
        grid = max(1, rt.config.num_threads // block)
        stats = None
        k = 2
        while k <= n:
            j = k >> 1
            while j > 0:
                stats = rt.launch(bitonic_pass_kernel, grid, block,
                                  [n, k, j, buf])
                j >>= 1
            k <<= 1
        self.check(rt.download(buf), sorted(data), "sorted keys")
        return stats
