"""Scan: parallel prefix sum (Hillis-Steele, GPU Gems 3 chapter 39)."""

from repro.benchsuite.base import Benchmark
from repro.nocl import i32, kernel, ptr


@kernel
def scan_kernel(n: i32, data: ptr[i32], out: ptr[i32]):
    # Double-buffered inclusive scan of n elements (n <= 1024), processed
    # in chunks of blockDim with a running carry, like the multi-pass
    # formulation in GPU Gems.
    ping = shared(i32, 1024)
    pong = shared(i32, 1024)
    carry = shared(i32, 1)
    if threadIdx.x == 0:
        carry[0] = 0
    syncthreads()
    base = 0
    while base < n:
        i = threadIdx.x
        if base + i < n:
            ping[i] = data[base + i]
        else:
            ping[i] = 0
        syncthreads()
        # Hillis-Steele within the chunk.
        offset = 1
        src_is_ping = 1
        while offset < blockDim.x:
            if src_is_ping == 1:
                if i >= offset:
                    pong[i] = ping[i] + ping[i - offset]
                else:
                    pong[i] = ping[i]
            else:
                if i >= offset:
                    ping[i] = pong[i] + pong[i - offset]
                else:
                    ping[i] = pong[i]
            src_is_ping = 1 - src_is_ping
            offset = offset << 1
            syncthreads()
        if base + i < n:
            if src_is_ping == 1:
                out[base + i] = ping[i] + carry[0]
            else:
                out[base + i] = pong[i] + carry[0]
        syncthreads()
        if threadIdx.x == 0:
            last = base + blockDim.x - 1
            if last >= n:
                last = n - 1
            carry[0] = out[last]
        syncthreads()
        base += blockDim.x


class Scan(Benchmark):
    name = "Scan"
    description = "Parallel prefix sum"
    origin = "GPU Gems 3"
    uses_shared = True

    def run(self, rt, scale=1):
        rng = self.rng()
        n = 512 * scale
        data = [rng.randrange(-20, 20) for _ in range(n)]
        buf = rt.alloc(i32, n)
        out = rt.alloc(i32, n)
        rt.upload(buf, data)
        block = self.full_block(rt)
        stats = rt.launch(scan_kernel, 1, block, [n, buf, out])
        expect, acc = [], 0
        for value in data:
            acc += value
            expect.append(acc)
        self.check(rt.download(out), expect, "prefix sums")
        return stats
