"""Reduce: parallel vector summation via shared-memory tree reduction."""

from repro.benchsuite.base import Benchmark
from repro.nocl import i32, kernel, ptr


@kernel
def reduce_kernel(n: i32, data: ptr[i32], out: ptr[i32]):
    partial = shared(i32, 1024)
    # Grid-stride accumulation into one partial per thread.
    acc = 0
    i = threadIdx.x + blockIdx.x * blockDim.x
    while i < n:
        acc += data[i]
        i += blockDim.x * gridDim.x
    partial[threadIdx.x] = acc
    syncthreads()
    # Tree reduction within the block.
    stride = blockDim.x >> 1
    while stride > 0:
        if threadIdx.x < stride:
            partial[threadIdx.x] = partial[threadIdx.x] + \
                partial[threadIdx.x + stride]
        syncthreads()
        stride = stride >> 1
    if threadIdx.x == 0:
        atomic_add(out, 0, partial[0])


class Reduce(Benchmark):
    name = "Reduce"
    description = "Vector summation"
    origin = "CUDA SDK samples"
    uses_shared = True

    def run(self, rt, scale=1):
        rng = self.rng()
        n = 4096 * scale
        data = [rng.randrange(-50, 50) for _ in range(n)]
        buf = rt.alloc(i32, n)
        out = rt.alloc(i32, 1)
        rt.upload(buf, data)
        rt.upload(out, [0])
        block = self.full_block(rt)
        stats = rt.launch(reduce_kernel, 1, block, [n, buf, out])
        self.check(rt.download(out), [sum(data)], "sum")
        return stats
