"""VecAdd: element-wise vector addition (paper Table 1, from [56])."""

from repro.benchsuite.base import Benchmark
from repro.nocl import i32, kernel, ptr


@kernel
def vecadd_kernel(n: i32, a: ptr[i32], b: ptr[i32], c: ptr[i32]):
    i = threadIdx.x + blockIdx.x * blockDim.x
    while i < n:
        c[i] = a[i] + b[i]
        i += blockDim.x * gridDim.x


class VecAdd(Benchmark):
    name = "VecAdd"
    description = "Vector addition"
    origin = "NVIDIA OpenCL SDK samples"

    def run(self, rt, scale=1):
        rng = self.rng()
        n = 2048 * scale
        a_host = [rng.randrange(-1000, 1000) for _ in range(n)]
        b_host = [rng.randrange(-1000, 1000) for _ in range(n)]
        a = rt.alloc(i32, n)
        b = rt.alloc(i32, n)
        c = rt.alloc(i32, n)
        rt.upload(a, a_host)
        rt.upload(b, b_host)
        block = self.default_block(rt)
        grid = max(1, rt.config.num_threads // block) * 2
        stats = rt.launch(vecadd_kernel, grid, block, [n, a, b, c])
        self.check(rt.download(c), [x + y for x, y in zip(a_host, b_host)],
                   "c")
        return stats
