"""Binary encode/decode for the simulator's RV32IMA+Zfinx+CHERI ISA.

Standard RISC-V R/I/S/B/U/J formats are used throughout.  CHERI operations
live in major opcode 0x5B following the CHERI-RISC-V v9 layout (two-source
R-type ops selected by funct7; one-source ops under funct7=0x7F selected by
the rs2 field).  Capability loads/stores use the custom-0/custom-1 opcodes,
and the three simulator-level SIMT operations (BARRIER/HALT/TRAP) use
custom-3.  In pure-capability mode, AUIPC decodes as AUIPCC, JAL as CJAL,
and word atomics as capability-addressed atomics — mirroring how purecap
CHERI-RISC-V reinterprets the standard encodings.
"""

from repro.isa.instructions import Instr, Op

_OPC_LOAD = 0x03
_OPC_CLOAD = 0x0B
_OPC_MISC_MEM = 0x0F
_OPC_OP_IMM = 0x13
_OPC_AUIPC = 0x17
_OPC_STORE = 0x23
_OPC_CSTORE = 0x2B
_OPC_AMO = 0x2F
_OPC_OP = 0x33
_OPC_LUI = 0x37
_OPC_OP_FP = 0x53
_OPC_CHERI = 0x5B
_OPC_BRANCH = 0x63
_OPC_JALR = 0x67
_OPC_JAL = 0x6F
_OPC_SYSTEM = 0x73
_OPC_SIM = 0x7B

# op -> (funct3, funct7) for R-type arithmetic.
_R_TYPE = {
    Op.ADD: (0, 0x00), Op.SUB: (0, 0x20), Op.SLL: (1, 0x00),
    Op.SLT: (2, 0x00), Op.SLTU: (3, 0x00), Op.XOR: (4, 0x00),
    Op.SRL: (5, 0x00), Op.SRA: (5, 0x20), Op.OR: (6, 0x00),
    Op.AND: (7, 0x00),
    Op.MUL: (0, 0x01), Op.MULH: (1, 0x01), Op.MULHSU: (2, 0x01),
    Op.MULHU: (3, 0x01), Op.DIV: (4, 0x01), Op.DIVU: (5, 0x01),
    Op.REM: (6, 0x01), Op.REMU: (7, 0x01),
}
_R_DECODE = {v: k for k, v in _R_TYPE.items()}

_I_ARITH = {
    Op.ADDI: 0, Op.SLTI: 2, Op.SLTIU: 3, Op.XORI: 4, Op.ORI: 6, Op.ANDI: 7,
}
_I_ARITH_DECODE = {v: k for k, v in _I_ARITH.items()}

_SHIFTS = {Op.SLLI: (1, 0x00), Op.SRLI: (5, 0x00), Op.SRAI: (5, 0x20)}
_SHIFT_DECODE = {v: k for k, v in _SHIFTS.items()}

_LOADS = {Op.LB: 0, Op.LH: 1, Op.LW: 2, Op.LBU: 4, Op.LHU: 5}
_LOADS_DECODE = {v: k for k, v in _LOADS.items()}
_STORES = {Op.SB: 0, Op.SH: 1, Op.SW: 2}
_STORES_DECODE = {v: k for k, v in _STORES.items()}
_CLOADS = {Op.CLB: 0, Op.CLH: 1, Op.CLW: 2, Op.CLC: 3, Op.CLBU: 4, Op.CLHU: 5}
_CLOADS_DECODE = {v: k for k, v in _CLOADS.items()}
_CSTORES = {Op.CSB: 0, Op.CSH: 1, Op.CSW: 2, Op.CSC: 3}
_CSTORES_DECODE = {v: k for k, v in _CSTORES.items()}

_BRANCHES = {Op.BEQ: 0, Op.BNE: 1, Op.BLT: 4, Op.BGE: 5, Op.BLTU: 6, Op.BGEU: 7}
_BRANCHES_DECODE = {v: k for k, v in _BRANCHES.items()}

_AMO_FUNCT5 = {
    Op.AMOADD_W: 0x00, Op.AMOSWAP_W: 0x01, Op.AMOXOR_W: 0x04,
    Op.AMOOR_W: 0x08, Op.AMOAND_W: 0x0C, Op.AMOMIN_W: 0x10,
    Op.AMOMAX_W: 0x14, Op.AMOMINU_W: 0x18, Op.AMOMAXU_W: 0x1C,
}
_AMO_DECODE = {v: k for k, v in _AMO_FUNCT5.items()}

# Zfinx: op -> (funct7, funct3-or-None, rs2-selector-or-None).
_FP = {
    Op.FADD_S: (0x00, None, None), Op.FSUB_S: (0x04, None, None),
    Op.FMUL_S: (0x08, None, None), Op.FDIV_S: (0x0C, None, None),
    Op.FSQRT_S: (0x2C, None, 0),
    Op.FSGNJ_S: (0x10, 0, None), Op.FSGNJN_S: (0x10, 1, None),
    Op.FSGNJX_S: (0x10, 2, None),
    Op.FMIN_S: (0x14, 0, None), Op.FMAX_S: (0x14, 1, None),
    Op.FLE_S: (0x50, 0, None), Op.FLT_S: (0x50, 1, None),
    Op.FEQ_S: (0x50, 2, None),
    Op.FCVT_W_S: (0x60, None, 0), Op.FCVT_WU_S: (0x60, None, 1),
    Op.FCVT_S_W: (0x68, None, 0), Op.FCVT_S_WU: (0x68, None, 1),
}

# CHERI two-source ops: op -> funct7 (funct3 = 0).
_CHERI_RR = {
    Op.CSPECIALRW: 0x01, Op.CSETBOUNDS: 0x08, Op.CSETBOUNDSEXACT: 0x09,
    Op.CANDPERM: 0x0D, Op.CSETFLAGS: 0x0E, Op.CSETADDR: 0x10,
    Op.CINCOFFSET: 0x11,
}
_CHERI_RR_DECODE = {v: k for k, v in _CHERI_RR.items()}

# CHERI one-source ops: op -> rs2-field selector (funct7 = 0x7F, funct3 = 0).
_CHERI_UNARY = {
    Op.CGETPERM: 0x00, Op.CGETTYPE: 0x01, Op.CGETBASE: 0x02,
    Op.CGETLEN: 0x03, Op.CGETTAG: 0x04, Op.CGETSEALED: 0x05,
    Op.CGETFLAGS: 0x07, Op.CRRL: 0x08, Op.CRAM: 0x09, Op.CMOVE: 0x0A,
    Op.CCLEARTAG: 0x0B, Op.CGETADDR: 0x0F, Op.CSEALENTRY: 0x11,
}
_CHERI_UNARY_DECODE = {v: k for k, v in _CHERI_UNARY.items()}

_SIM_OPS = {Op.BARRIER: 0, Op.HALT: 1, Op.TRAP: 2}
_SIM_DECODE = {v: k for k, v in _SIM_OPS.items()}


class EncodingError(ValueError):
    """Raised when an instruction cannot be encoded (bad field ranges)."""


def _check_reg(value, name):
    if value is None or not 0 <= value < 32:
        raise EncodingError("bad %s field: %r" % (name, value))
    return value


def _imm12(imm):
    if imm is None or not -2048 <= imm <= 2047:
        raise EncodingError("I/S immediate out of range: %r" % (imm,))
    return imm & 0xFFF


def _r(funct7, rs2, rs1, funct3, rd, opcode):
    return (funct7 << 25) | (rs2 << 20) | (rs1 << 15) | (funct3 << 12) | (rd << 7) | opcode


def _i(imm, rs1, funct3, rd, opcode):
    return (_imm12(imm) << 20) | (rs1 << 15) | (funct3 << 12) | (rd << 7) | opcode


def _s(imm, rs2, rs1, funct3, opcode):
    value = _imm12(imm)
    return (((value >> 5) & 0x7F) << 25) | (rs2 << 20) | (rs1 << 15) | \
        (funct3 << 12) | ((value & 0x1F) << 7) | opcode


def _b(imm, rs2, rs1, funct3, opcode):
    if imm is None or imm % 2 or not -4096 <= imm <= 4094:
        raise EncodingError("branch immediate out of range: %r" % (imm,))
    value = imm & 0x1FFF
    return (((value >> 12) & 1) << 31) | (((value >> 5) & 0x3F) << 25) | \
        (rs2 << 20) | (rs1 << 15) | (funct3 << 12) | \
        (((value >> 1) & 0xF) << 8) | (((value >> 11) & 1) << 7) | opcode


def _u(imm, rd, opcode):
    if imm is None or not 0 <= imm <= 0xFFFFF:
        raise EncodingError("U immediate out of range: %r" % (imm,))
    return (imm << 12) | (rd << 7) | opcode


def _j(imm, rd, opcode):
    if imm is None or imm % 2 or not -(1 << 20) <= imm <= (1 << 20) - 2:
        raise EncodingError("J immediate out of range: %r" % (imm,))
    value = imm & 0x1FFFFF
    return (((value >> 20) & 1) << 31) | (((value >> 1) & 0x3FF) << 21) | \
        (((value >> 11) & 1) << 20) | (((value >> 12) & 0xFF) << 12) | \
        (rd << 7) | opcode


def encode(instr):
    """Encode an :class:`Instr` to its 32-bit word."""
    op = instr.op
    rd = instr.rd or 0
    rs1 = instr.rs1 or 0
    rs2 = instr.rs2 or 0
    if op in _R_TYPE:
        f3, f7 = _R_TYPE[op]
        return _r(f7, _check_reg(instr.rs2, "rs2"), _check_reg(instr.rs1, "rs1"),
                  f3, _check_reg(instr.rd, "rd"), _OPC_OP)
    if op in _I_ARITH:
        return _i(instr.imm, _check_reg(instr.rs1, "rs1"), _I_ARITH[op],
                  _check_reg(instr.rd, "rd"), _OPC_OP_IMM)
    if op in _SHIFTS:
        f3, f7 = _SHIFTS[op]
        if instr.imm is None or not 0 <= instr.imm < 32:
            raise EncodingError("shift amount out of range: %r" % (instr.imm,))
        return _r(f7, instr.imm, _check_reg(instr.rs1, "rs1"), f3,
                  _check_reg(instr.rd, "rd"), _OPC_OP_IMM)
    if op in _LOADS:
        return _i(instr.imm, _check_reg(instr.rs1, "rs1"), _LOADS[op],
                  _check_reg(instr.rd, "rd"), _OPC_LOAD)
    if op in _STORES:
        return _s(instr.imm, _check_reg(instr.rs2, "rs2"),
                  _check_reg(instr.rs1, "rs1"), _STORES[op], _OPC_STORE)
    if op in _CLOADS:
        return _i(instr.imm, _check_reg(instr.rs1, "rs1"), _CLOADS[op],
                  _check_reg(instr.rd, "rd"), _OPC_CLOAD)
    if op in _CSTORES:
        return _s(instr.imm, _check_reg(instr.rs2, "rs2"),
                  _check_reg(instr.rs1, "rs1"), _CSTORES[op], _OPC_CSTORE)
    if op in _BRANCHES:
        return _b(instr.imm, _check_reg(instr.rs2, "rs2"),
                  _check_reg(instr.rs1, "rs1"), _BRANCHES[op], _OPC_BRANCH)
    if op in (Op.LUI,):
        return _u(instr.imm, _check_reg(instr.rd, "rd"), _OPC_LUI)
    if op in (Op.AUIPC, Op.AUIPCC):
        return _u(instr.imm, _check_reg(instr.rd, "rd"), _OPC_AUIPC)
    if op in (Op.JAL, Op.CJAL):
        return _j(instr.imm, _check_reg(instr.rd, "rd"), _OPC_JAL)
    if op is Op.JALR:
        return _i(instr.imm, _check_reg(instr.rs1, "rs1"), 0,
                  _check_reg(instr.rd, "rd"), _OPC_JALR)
    if op is Op.CJALR:
        return _i(instr.imm, _check_reg(instr.rs1, "rs1"), 3,
                  _check_reg(instr.rd, "rd"), _OPC_CHERI)
    if op is Op.FENCE:
        return _i(0, 0, 0, 0, _OPC_MISC_MEM)
    if op is Op.ECALL:
        return _i(0, 0, 0, 0, _OPC_SYSTEM)
    if op is Op.EBREAK:
        return _i(1, 0, 0, 0, _OPC_SYSTEM)
    if op in _AMO_FUNCT5 or op is Op.CAMOADD_W:
        funct5 = _AMO_FUNCT5.get(op, _AMO_FUNCT5[Op.AMOADD_W])
        return _r(funct5 << 2, _check_reg(instr.rs2, "rs2"),
                  _check_reg(instr.rs1, "rs1"), 2,
                  _check_reg(instr.rd, "rd"), _OPC_AMO)
    if op in _FP:
        f7, f3, rs2sel = _FP[op]
        rs2_field = rs2sel if rs2sel is not None else _check_reg(instr.rs2, "rs2")
        return _r(f7, rs2_field, _check_reg(instr.rs1, "rs1"),
                  f3 if f3 is not None else 0,
                  _check_reg(instr.rd, "rd"), _OPC_OP_FP)
    if op in _CHERI_RR:
        return _r(_CHERI_RR[op], _check_reg(instr.rs2, "rs2"),
                  _check_reg(instr.rs1, "rs1"), 0,
                  _check_reg(instr.rd, "rd"), _OPC_CHERI)
    if op in _CHERI_UNARY:
        return _r(0x7F, _CHERI_UNARY[op], _check_reg(instr.rs1, "rs1"), 0,
                  _check_reg(instr.rd, "rd"), _OPC_CHERI)
    if op is Op.CINCOFFSETIMM:
        return _i(instr.imm, _check_reg(instr.rs1, "rs1"), 1,
                  _check_reg(instr.rd, "rd"), _OPC_CHERI)
    if op is Op.CSETBOUNDSIMM:
        if instr.imm is None or not 0 <= instr.imm <= 4095:
            raise EncodingError("CSetBoundsImm takes an unsigned 12-bit imm")
        return ((instr.imm & 0xFFF) << 20) | (_check_reg(instr.rs1, "rs1") << 15) | \
            (2 << 12) | (_check_reg(instr.rd, "rd") << 7) | _OPC_CHERI
    if op in _SIM_OPS:
        return _i(instr.imm or 0, rs1, _SIM_OPS[op], rd, _OPC_SIM)
    raise EncodingError("cannot encode op %s" % op)


def _sext(value, bits):
    sign = 1 << (bits - 1)
    return (value & (sign - 1)) - (value & sign)


def decode(word, cheri_mode=False):
    """Decode a 32-bit word to an :class:`Instr`.

    ``cheri_mode`` selects the pure-capability aliases: AUIPC decodes as
    AUIPCC, JAL as CJAL, and word atomics as capability atomics.
    """
    opcode = word & 0x7F
    rd = (word >> 7) & 0x1F
    funct3 = (word >> 12) & 0x7
    rs1 = (word >> 15) & 0x1F
    rs2 = (word >> 20) & 0x1F
    funct7 = (word >> 25) & 0x7F
    imm_i = _sext(word >> 20, 12)
    imm_s = _sext(((word >> 25) << 5) | ((word >> 7) & 0x1F), 12)
    imm_b = _sext((((word >> 31) & 1) << 12) | (((word >> 7) & 1) << 11) |
                  (((word >> 25) & 0x3F) << 5) | (((word >> 8) & 0xF) << 1), 13)
    imm_u = (word >> 12) & 0xFFFFF
    imm_j = _sext((((word >> 31) & 1) << 20) | (((word >> 12) & 0xFF) << 12) |
                  (((word >> 20) & 1) << 11) | (((word >> 21) & 0x3FF) << 1), 21)

    if opcode == _OPC_OP:
        op = _R_DECODE.get((funct3, funct7))
        if op:
            return Instr(op, rd=rd, rs1=rs1, rs2=rs2)
    elif opcode == _OPC_OP_IMM:
        if funct3 in (1, 5):
            op = _SHIFT_DECODE.get((funct3, funct7))
            if op:
                return Instr(op, rd=rd, rs1=rs1, imm=rs2)
        else:
            op = _I_ARITH_DECODE.get(funct3)
            if op:
                return Instr(op, rd=rd, rs1=rs1, imm=imm_i)
    elif opcode == _OPC_LOAD:
        op = _LOADS_DECODE.get(funct3)
        if op:
            return Instr(op, rd=rd, rs1=rs1, imm=imm_i)
    elif opcode == _OPC_STORE:
        op = _STORES_DECODE.get(funct3)
        if op:
            return Instr(op, rs1=rs1, rs2=rs2, imm=imm_s)
    elif opcode == _OPC_CLOAD:
        op = _CLOADS_DECODE.get(funct3)
        if op:
            return Instr(op, rd=rd, rs1=rs1, imm=imm_i)
    elif opcode == _OPC_CSTORE:
        op = _CSTORES_DECODE.get(funct3)
        if op:
            return Instr(op, rs1=rs1, rs2=rs2, imm=imm_s)
    elif opcode == _OPC_BRANCH:
        op = _BRANCHES_DECODE.get(funct3)
        if op:
            return Instr(op, rs1=rs1, rs2=rs2, imm=imm_b)
    elif opcode == _OPC_LUI:
        return Instr(Op.LUI, rd=rd, imm=imm_u)
    elif opcode == _OPC_AUIPC:
        return Instr(Op.AUIPCC if cheri_mode else Op.AUIPC, rd=rd, imm=imm_u)
    elif opcode == _OPC_JAL:
        return Instr(Op.CJAL if cheri_mode else Op.JAL, rd=rd, imm=imm_j)
    elif opcode == _OPC_JALR and funct3 == 0:
        return Instr(Op.JALR, rd=rd, rs1=rs1, imm=imm_i)
    elif opcode == _OPC_MISC_MEM:
        return Instr(Op.FENCE)
    elif opcode == _OPC_SYSTEM:
        return Instr(Op.EBREAK if imm_i == 1 else Op.ECALL)
    elif opcode == _OPC_AMO and funct3 == 2:
        op = _AMO_DECODE.get(funct7 >> 2)
        if op:
            if cheri_mode and op is Op.AMOADD_W:
                op = Op.CAMOADD_W
            return Instr(op, rd=rd, rs1=rs1, rs2=rs2)
    elif opcode == _OPC_OP_FP:
        for op, (f7, f3, rs2sel) in _FP.items():
            if f7 != funct7:
                continue
            if f3 is not None and f3 != funct3:
                continue
            if rs2sel is not None and rs2sel != rs2:
                continue
            if rs2sel is not None:
                return Instr(op, rd=rd, rs1=rs1)
            return Instr(op, rd=rd, rs1=rs1, rs2=rs2)
    elif opcode == _OPC_CHERI:
        if funct3 == 0 and funct7 == 0x7F:
            op = _CHERI_UNARY_DECODE.get(rs2)
            if op:
                return Instr(op, rd=rd, rs1=rs1)
        elif funct3 == 0:
            op = _CHERI_RR_DECODE.get(funct7)
            if op:
                return Instr(op, rd=rd, rs1=rs1, rs2=rs2)
        elif funct3 == 1:
            return Instr(Op.CINCOFFSETIMM, rd=rd, rs1=rs1, imm=imm_i)
        elif funct3 == 2:
            return Instr(Op.CSETBOUNDSIMM, rd=rd, rs1=rs1, imm=(word >> 20) & 0xFFF)
        elif funct3 == 3:
            return Instr(Op.CJALR, rd=rd, rs1=rs1, imm=imm_i)
    elif opcode == _OPC_SIM:
        op = _SIM_DECODE.get(funct3)
        if op:
            return Instr(op, rd=rd, rs1=rs1, imm=imm_i)
    raise EncodingError("cannot decode word 0x%08x" % word)
