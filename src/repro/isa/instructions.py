"""Opcodes and the instruction value type.

The opcode set is RV32IMA + Zfinx (single-precision float in the integer
register file) + the CHERI subset of paper Figure 4, plus three
simulator-level operations (BARRIER for ``__syncthreads``, HALT for kernel
thread completion, TRAP for software bounds-check failure in the Rust-like
comparison mode).
"""

from dataclasses import dataclass, field
from enum import Enum, auto
from typing import Optional


class Op(Enum):
    """Every operation the SIMT core can execute."""

    # --- RV32I ---
    LUI = auto()
    AUIPC = auto()
    JAL = auto()
    JALR = auto()
    BEQ = auto()
    BNE = auto()
    BLT = auto()
    BGE = auto()
    BLTU = auto()
    BGEU = auto()
    LB = auto()
    LH = auto()
    LW = auto()
    LBU = auto()
    LHU = auto()
    SB = auto()
    SH = auto()
    SW = auto()
    ADDI = auto()
    SLTI = auto()
    SLTIU = auto()
    XORI = auto()
    ORI = auto()
    ANDI = auto()
    SLLI = auto()
    SRLI = auto()
    SRAI = auto()
    ADD = auto()
    SUB = auto()
    SLL = auto()
    SLT = auto()
    SLTU = auto()
    XOR = auto()
    SRL = auto()
    SRA = auto()
    OR = auto()
    AND = auto()
    FENCE = auto()
    ECALL = auto()
    EBREAK = auto()

    # --- M extension ---
    MUL = auto()
    MULH = auto()
    MULHSU = auto()
    MULHU = auto()
    DIV = auto()
    DIVU = auto()
    REM = auto()
    REMU = auto()

    # --- A extension (word atomics) ---
    AMOADD_W = auto()
    AMOSWAP_W = auto()
    AMOAND_W = auto()
    AMOOR_W = auto()
    AMOXOR_W = auto()
    AMOMIN_W = auto()
    AMOMAX_W = auto()
    AMOMINU_W = auto()
    AMOMAXU_W = auto()

    # --- Zfinx single-precision float (operands in x-registers) ---
    FADD_S = auto()
    FSUB_S = auto()
    FMUL_S = auto()
    FDIV_S = auto()
    FSQRT_S = auto()
    FMIN_S = auto()
    FMAX_S = auto()
    FEQ_S = auto()
    FLT_S = auto()
    FLE_S = auto()
    FCVT_W_S = auto()
    FCVT_WU_S = auto()
    FCVT_S_W = auto()
    FCVT_S_WU = auto()
    FSGNJ_S = auto()
    FSGNJN_S = auto()
    FSGNJX_S = auto()

    # --- CHERI (paper Figure 4) ---
    CGETTAG = auto()
    CCLEARTAG = auto()
    CGETPERM = auto()
    CANDPERM = auto()
    CGETBASE = auto()
    CGETLEN = auto()
    CSETBOUNDS = auto()
    CSETBOUNDSIMM = auto()
    CSETBOUNDSEXACT = auto()
    CGETADDR = auto()
    CSETADDR = auto()
    CINCOFFSET = auto()
    CINCOFFSETIMM = auto()
    CGETTYPE = auto()
    CGETSEALED = auto()
    CGETFLAGS = auto()
    CSETFLAGS = auto()
    CSEALENTRY = auto()
    CMOVE = auto()
    AUIPCC = auto()
    CJAL = auto()
    CJALR = auto()
    CSPECIALRW = auto()
    CRRL = auto()
    CRAM = auto()
    # Loads/stores via capabilities.
    CLB = auto()
    CLH = auto()
    CLW = auto()
    CLBU = auto()
    CLHU = auto()
    CSB = auto()
    CSH = auto()
    CSW = auto()
    CLC = auto()
    CSC = auto()
    # Capability-addressed atomic (CHERI-A interaction, paper excludes from
    # Figure 4 but the benchmarks need atomics under purecap).
    CAMOADD_W = auto()

    # --- simulator-level SIMT operations ---
    BARRIER = auto()
    HALT = auto()
    TRAP = auto()


@dataclass(frozen=True)
class Instr:
    """A decoded instruction.

    ``rd``/``rs1``/``rs2`` are register indices (``None`` when absent) and
    ``imm`` the sign-extended immediate.  ``depth`` is the static
    control-flow nesting level used by the active-thread-selection stage to
    reconverge divergent threads (deepest-first, paper section 2.3); it is
    metadata supplied by the compiler, not an encoded field.  ``line`` is
    compiler side-band too: the DSL source line the instruction was
    generated from (``None`` for runtime-generated prologue/epilogue),
    used by the profiler to attribute cycles back to kernel source.
    """

    op: Op
    rd: Optional[int] = None
    rs1: Optional[int] = None
    rs2: Optional[int] = None
    imm: Optional[int] = None
    depth: int = 0
    comment: str = field(default="", compare=False)
    line: Optional[int] = field(default=None, compare=False)

    def with_depth(self, depth):
        return Instr(self.op, self.rd, self.rs1, self.rs2, self.imm,
                     depth=depth, comment=self.comment, line=self.line)

    def __str__(self):
        from repro.isa.disasm import format_instr
        return format_instr(self)


# --------------------------------------------------------------------------
# Classification sets the pipeline and the stats collector dispatch on.
# --------------------------------------------------------------------------

#: All CHERI-introduced operations (for the Figure 6 histogram).
CHERI_OPS = frozenset({
    Op.CGETTAG, Op.CCLEARTAG, Op.CGETPERM, Op.CANDPERM, Op.CGETBASE,
    Op.CGETLEN, Op.CSETBOUNDS, Op.CSETBOUNDSIMM, Op.CSETBOUNDSEXACT,
    Op.CGETADDR, Op.CSETADDR, Op.CINCOFFSET, Op.CINCOFFSETIMM, Op.CGETTYPE,
    Op.CGETSEALED, Op.CGETFLAGS, Op.CSETFLAGS, Op.CSEALENTRY, Op.CMOVE,
    Op.AUIPCC, Op.CJAL, Op.CJALR, Op.CSPECIALRW, Op.CRRL, Op.CRAM,
    Op.CLB, Op.CLH, Op.CLW, Op.CLBU, Op.CLHU, Op.CSB, Op.CSH, Op.CSW,
    Op.CLC, Op.CSC, Op.CAMOADD_W,
})

#: Memory loads (including capability-addressed and capability-width).
LOAD_OPS = frozenset({
    Op.LB, Op.LH, Op.LW, Op.LBU, Op.LHU,
    Op.CLB, Op.CLH, Op.CLW, Op.CLBU, Op.CLHU, Op.CLC,
})

#: Memory stores (including capability-addressed and capability-width).
STORE_OPS = frozenset({
    Op.SB, Op.SH, Op.SW, Op.CSB, Op.CSH, Op.CSW, Op.CSC,
})

#: Atomic read-modify-write operations.
AMO_OPS = frozenset({
    Op.AMOADD_W, Op.AMOSWAP_W, Op.AMOAND_W, Op.AMOOR_W, Op.AMOXOR_W,
    Op.AMOMIN_W, Op.AMOMAX_W, Op.AMOMINU_W, Op.AMOMAXU_W, Op.CAMOADD_W,
})

#: All operations that access memory.
MEM_OPS = LOAD_OPS | STORE_OPS | AMO_OPS

#: Byte width of each memory access, per op.
ACCESS_WIDTH = {
    Op.LB: 1, Op.LBU: 1, Op.SB: 1, Op.CLB: 1, Op.CLBU: 1, Op.CSB: 1,
    Op.LH: 2, Op.LHU: 2, Op.SH: 2, Op.CLH: 2, Op.CLHU: 2, Op.CSH: 2,
    Op.LW: 4, Op.SW: 4, Op.CLW: 4, Op.CSW: 4,
    Op.AMOADD_W: 4, Op.AMOSWAP_W: 4, Op.AMOAND_W: 4, Op.AMOOR_W: 4,
    Op.AMOXOR_W: 4, Op.AMOMIN_W: 4, Op.AMOMAX_W: 4, Op.AMOMINU_W: 4,
    Op.AMOMAXU_W: 4, Op.CAMOADD_W: 4,
    Op.CLC: 8, Op.CSC: 8,
}

#: Operations executed in the shared-function unit in every configuration
#: (SIMTight routes fp divide and square root there, paper section 3.3).
SFU_OPS = frozenset({
    Op.FDIV_S, Op.FSQRT_S, Op.DIV, Op.DIVU, Op.REM, Op.REMU,
})

#: CHERI operations eligible for the optimised configuration's SFU slow
#: path: getting and setting bounds is infrequent on GPU workloads (paper
#: Figure 6), so their expensive CheriCapLib logic can live in the SFU.
CHERI_SLOW_OPS = frozenset({
    Op.CGETBASE, Op.CGETLEN, Op.CSETBOUNDS, Op.CSETBOUNDSIMM,
    Op.CSETBOUNDSEXACT, Op.CRRL, Op.CRAM,
})

#: Operations whose destination register receives full capability metadata
#: (everything else writing rd sets the metadata to null, paper Figure 4).
CAP_RESULT_OPS = frozenset({
    Op.CCLEARTAG, Op.CANDPERM, Op.CSETBOUNDS, Op.CSETBOUNDSIMM,
    Op.CSETBOUNDSEXACT, Op.CSETADDR, Op.CINCOFFSET, Op.CINCOFFSETIMM,
    Op.CSETFLAGS, Op.CSEALENTRY, Op.CMOVE, Op.AUIPCC, Op.CJAL, Op.CJALR,
    Op.CSPECIALRW, Op.CLC,
})

#: Operations reading capability metadata from rs1 (cs1 operands).
CAP_USE_RS1_OPS = frozenset({
    Op.CGETTAG, Op.CCLEARTAG, Op.CGETPERM, Op.CANDPERM, Op.CGETBASE,
    Op.CGETLEN, Op.CSETBOUNDS, Op.CSETBOUNDSIMM, Op.CSETBOUNDSEXACT,
    Op.CGETADDR, Op.CSETADDR, Op.CINCOFFSET, Op.CINCOFFSETIMM, Op.CGETTYPE,
    Op.CGETSEALED, Op.CGETFLAGS, Op.CSETFLAGS, Op.CSEALENTRY, Op.CMOVE,
    Op.CJALR, Op.CLB, Op.CLH, Op.CLW, Op.CLBU, Op.CLHU, Op.CSB, Op.CSH,
    Op.CSW, Op.CLC, Op.CSC, Op.CAMOADD_W,
})

#: Control-flow operations (branches and jumps).
BRANCH_OPS = frozenset({
    Op.BEQ, Op.BNE, Op.BLT, Op.BGE, Op.BLTU, Op.BGEU,
})
JUMP_OPS = frozenset({Op.JAL, Op.JALR, Op.CJAL, Op.CJALR})

#: Zfinx floating-point operations.
FLOAT_OPS = frozenset({
    Op.FADD_S, Op.FSUB_S, Op.FMUL_S, Op.FDIV_S, Op.FSQRT_S, Op.FMIN_S,
    Op.FMAX_S, Op.FEQ_S, Op.FLT_S, Op.FLE_S, Op.FCVT_W_S, Op.FCVT_WU_S,
    Op.FCVT_S_W, Op.FCVT_S_WU, Op.FSGNJ_S, Op.FSGNJN_S, Op.FSGNJX_S,
})
