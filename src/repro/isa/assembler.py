"""A small text assembler: the inverse of the disassembler.

Accepts the same syntax :mod:`repro.isa.disasm` prints, plus labels, so
pipeline tests and experiments can be written as readable assembly::

    text = '''
        addi t0, zero, 0
    loop:
        addi t0, t0, 1
        blt  t0, a0, loop
        sw   t0, 0(a1)
        halt
    '''
    program = assemble_text(text)

Branch/jump targets may be labels or literal byte offsets.  ``#`` starts a
comment.  Register names are ABI names or ``x0``-``x31``.
"""

import re

from repro.isa.disasm import _MNEMONICS
from repro.isa.instructions import BRANCH_OPS, LOAD_OPS, STORE_OPS, Op
from repro.isa.registers import ABI_NAMES
from repro.nocl.ir import VInstr, VLabel, assemble

_BY_MNEMONIC = {name: op for op, name in _MNEMONICS.items()}
for _op in Op:
    _BY_MNEMONIC.setdefault(_op.name.lower(), _op)

_REG_BY_NAME = {name: index for index, name in enumerate(ABI_NAMES)}
for _i in range(32):
    _REG_BY_NAME["x%d" % _i] = _i

_MEM_OPERAND = re.compile(r"^(-?\d+)\((\w+)\)$")

#: Ops taking rd, rs1 only.
_UNARY_OPS = frozenset({
    Op.CGETTAG, Op.CGETPERM, Op.CGETBASE, Op.CGETLEN, Op.CGETADDR,
    Op.CGETTYPE, Op.CGETSEALED, Op.CGETFLAGS, Op.CCLEARTAG, Op.CMOVE,
    Op.CSEALENTRY, Op.CRRL, Op.CRAM, Op.FSQRT_S, Op.FCVT_W_S,
    Op.FCVT_WU_S, Op.FCVT_S_W, Op.FCVT_S_WU,
})
#: Ops taking rd, rs1, imm.
_IMM_OPS = frozenset({
    Op.ADDI, Op.SLTI, Op.SLTIU, Op.XORI, Op.ORI, Op.ANDI, Op.SLLI,
    Op.SRLI, Op.SRAI, Op.CINCOFFSETIMM, Op.CSETBOUNDSIMM, Op.JALR,
    Op.CJALR,
})
#: Ops taking rd, imm.
_UPPER_OPS = frozenset({Op.LUI, Op.AUIPC, Op.AUIPCC})
#: Ops with no operands.
_BARE_OPS = frozenset({Op.FENCE, Op.ECALL, Op.EBREAK})
#: Simulator-control ops: usually bare, but their encoding carries rd,
#: rs1 and a 12-bit immediate, so the full ``rd, rs1, imm`` form must
#: round-trip through the disassembler.
_SIM_OPS = frozenset({Op.BARRIER, Op.HALT, Op.TRAP})


class AssemblerError(ValueError):
    """Malformed assembly text."""


def _reg(token, line_no):
    index = _REG_BY_NAME.get(token)
    if index is None:
        raise AssemblerError("line %d: unknown register %r"
                             % (line_no, token))
    return index


def _int(token, line_no):
    try:
        return int(token, 0)
    except ValueError:
        raise AssemblerError("line %d: expected integer, got %r"
                             % (line_no, token)) from None


def _target(token, line_no):
    """A branch target: returns (imm, label)."""
    try:
        return int(token, 0), None
    except ValueError:
        return None, token


def parse_line(line, line_no, depth):
    """Parse one line to a VInstr / VLabel / None."""
    line = line.split("#", 1)[0].strip()
    if not line:
        return None
    if line.endswith(":"):
        name = line[:-1].strip()
        if not name.isidentifier():
            raise AssemblerError("line %d: bad label %r" % (line_no, name))
        return VLabel(name)
    parts = line.replace(",", " ").split()
    mnemonic, operands = parts[0], parts[1:]
    op = _BY_MNEMONIC.get(mnemonic)
    if op is None:
        raise AssemblerError("line %d: unknown mnemonic %r"
                             % (line_no, mnemonic))

    if op in _BARE_OPS:
        if operands:
            raise AssemblerError("line %d: %s takes no operands"
                                 % (line_no, mnemonic))
        return VInstr(op, depth=depth)
    if op in _SIM_OPS:
        if not operands:
            return VInstr(op, depth=depth)
        if len(operands) != 3:
            raise AssemblerError(
                "line %d: %s takes no operands or 'rd, rs1, imm'"
                % (line_no, mnemonic))
        return VInstr(op, rd=_reg(operands[0], line_no),
                      rs1=_reg(operands[1], line_no),
                      imm=_int(operands[2], line_no), depth=depth)
    if op in LOAD_OPS:
        match = _MEM_OPERAND.match(operands[1])
        if len(operands) != 2 or not match:
            raise AssemblerError("line %d: expected 'rd, imm(rs1)'"
                                 % line_no)
        return VInstr(op, rd=_reg(operands[0], line_no),
                      rs1=_reg(match.group(2), line_no),
                      imm=int(match.group(1)), depth=depth)
    if op in STORE_OPS:
        match = _MEM_OPERAND.match(operands[1])
        if len(operands) != 2 or not match:
            raise AssemblerError("line %d: expected 'rs2, imm(rs1)'"
                                 % line_no)
        return VInstr(op, rs2=_reg(operands[0], line_no),
                      rs1=_reg(match.group(2), line_no),
                      imm=int(match.group(1)), depth=depth)
    if op in BRANCH_OPS:
        if len(operands) != 3:
            raise AssemblerError("line %d: expected 'rs1, rs2, target'"
                                 % line_no)
        imm, label = _target(operands[2], line_no)
        return VInstr(op, rs1=_reg(operands[0], line_no),
                      rs2=_reg(operands[1], line_no), imm=imm,
                      target=label, depth=depth)
    if op in (Op.JAL, Op.CJAL):
        if len(operands) != 2:
            raise AssemblerError("line %d: expected 'rd, target'" % line_no)
        imm, label = _target(operands[1], line_no)
        return VInstr(op, rd=_reg(operands[0], line_no), imm=imm,
                      target=label, depth=depth)
    if op in _UPPER_OPS:
        return VInstr(op, rd=_reg(operands[0], line_no),
                      imm=_int(operands[1], line_no), depth=depth)
    if op in _IMM_OPS:
        if len(operands) != 3:
            raise AssemblerError("line %d: expected 'rd, rs1, imm'"
                                 % line_no)
        return VInstr(op, rd=_reg(operands[0], line_no),
                      rs1=_reg(operands[1], line_no),
                      imm=_int(operands[2], line_no), depth=depth)
    if op in _UNARY_OPS:
        if len(operands) != 2:
            raise AssemblerError("line %d: expected 'rd, rs1'" % line_no)
        return VInstr(op, rd=_reg(operands[0], line_no),
                      rs1=_reg(operands[1], line_no), depth=depth)
    # Everything else: three-register form (ALU, atomics, CHERI RR, FP).
    if len(operands) != 3:
        raise AssemblerError("line %d: expected 'rd, rs1, rs2'" % line_no)
    return VInstr(op, rd=_reg(operands[0], line_no),
                  rs1=_reg(operands[1], line_no),
                  rs2=_reg(operands[2], line_no), depth=depth)


def assemble_text(text, base_pc=0):
    """Assemble a program; ``@depth N`` directives set convergence depth."""
    items = []
    depth = 0
    for line_no, raw in enumerate(text.splitlines(), start=1):
        stripped = raw.split("#", 1)[0].strip()
        if stripped.startswith("@depth"):
            depth = int(stripped.split()[1])
            continue
        item = parse_line(raw, line_no, depth)
        if item is not None:
            items.append(item)
    return assemble(items, base_pc=base_pc)
