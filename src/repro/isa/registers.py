"""Register-file namespace for the merged RV32 register file.

SIMTight uses a merged integer/floating-point register file (Zfinx), and
CHERI extends every register with 33 bits of capability metadata (paper
Figure 4): ``rd/rs1/rs2`` operands refer to the 32-bit general-purpose part,
``cd/cs1/cs2`` to the full 65-bit contents.
"""

#: Number of architectural registers per hardware thread.
NUM_REGS = 32

#: Standard RISC-V ABI register names, index -> name.
ABI_NAMES = (
    "zero", "ra", "sp", "gp", "tp",
    "t0", "t1", "t2",
    "s0", "s1",
    "a0", "a1", "a2", "a3", "a4", "a5", "a6", "a7",
    "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9", "s10", "s11",
    "t3", "t4", "t5", "t6",
)

ZERO = 0
RA = 1
SP = 2
GP = 3
TP = 4
T0, T1, T2 = 5, 6, 7
S0, S1 = 8, 9
A0, A1, A2, A3, A4, A5, A6, A7 = 10, 11, 12, 13, 14, 15, 16, 17

#: Registers the kernel compiler may allocate freely (everything except
#: zero, ra, sp, gp, tp -- gp holds the kernel-argument pointer and tp the
#: scratchpad base in our ABI).
ALLOCATABLE = tuple(i for i in range(NUM_REGS) if i not in (ZERO, RA, SP, GP, TP))


def reg_name(index):
    """Human-readable ABI name for a register index."""
    if not 0 <= index < NUM_REGS:
        raise ValueError("bad register index %r" % (index,))
    return ABI_NAMES[index]
