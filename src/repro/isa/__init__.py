"""The RV32IMA+Zfinx+CHERI instruction set used by the SIMT core.

SIMTight implements RISC-V's ``rv32ima_zfinx`` profile (paper section 2.3)
extended with a large subset of the 32-bit CHERI instruction set, version 9
(paper Figure 4).  This package defines:

- :mod:`repro.isa.registers` — the 32-entry merged register file namespace
- :mod:`repro.isa.instructions` — opcodes, the :class:`Instr` value type,
  and classification sets the pipeline dispatches on
- :mod:`repro.isa.encoding` — 32-bit binary encode/decode
- :mod:`repro.isa.disasm` — assembly-style rendering
"""

from repro.isa.instructions import (
    CAP_RESULT_OPS,
    CHERI_OPS,
    LOAD_OPS,
    Op,
    SFU_OPS,
    STORE_OPS,
    Instr,
)
from repro.isa.registers import ABI_NAMES, NUM_REGS, reg_name

__all__ = [
    "ABI_NAMES",
    "CAP_RESULT_OPS",
    "CHERI_OPS",
    "Instr",
    "LOAD_OPS",
    "NUM_REGS",
    "Op",
    "SFU_OPS",
    "STORE_OPS",
    "reg_name",
]
