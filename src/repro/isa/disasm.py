"""Assembly-style rendering of instructions (for debugging and listings)."""

from repro.isa.instructions import BRANCH_OPS, LOAD_OPS, STORE_OPS, Op

#: Simulator-control ops render bare when every encoded field is zero
#: (the common case) and as ``rd, rs1, imm`` otherwise, mirroring the
#: two forms the assembler accepts so disassembly always reassembles.
_SIM_OPS = frozenset({Op.BARRIER, Op.HALT, Op.TRAP})
from repro.isa.registers import reg_name

_MNEMONICS = {
    Op.AMOADD_W: "amoadd.w", Op.AMOSWAP_W: "amoswap.w", Op.AMOAND_W: "amoand.w",
    Op.AMOOR_W: "amoor.w", Op.AMOXOR_W: "amoxor.w", Op.AMOMIN_W: "amomin.w",
    Op.AMOMAX_W: "amomax.w", Op.AMOMINU_W: "amominu.w", Op.AMOMAXU_W: "amomaxu.w",
    Op.CAMOADD_W: "camoadd.w",
    Op.FADD_S: "fadd.s", Op.FSUB_S: "fsub.s", Op.FMUL_S: "fmul.s",
    Op.FDIV_S: "fdiv.s", Op.FSQRT_S: "fsqrt.s", Op.FMIN_S: "fmin.s",
    Op.FMAX_S: "fmax.s", Op.FEQ_S: "feq.s", Op.FLT_S: "flt.s",
    Op.FLE_S: "fle.s", Op.FCVT_W_S: "fcvt.w.s", Op.FCVT_WU_S: "fcvt.wu.s",
    Op.FCVT_S_W: "fcvt.s.w", Op.FCVT_S_WU: "fcvt.s.wu",
    Op.FSGNJ_S: "fsgnj.s", Op.FSGNJN_S: "fsgnjn.s", Op.FSGNJX_S: "fsgnjx.s",
}


def _mnemonic(op):
    return _MNEMONICS.get(op, op.name.lower())


def format_instr(instr):
    """Render an :class:`Instr` in a RISC-V-assembler-like syntax."""
    op = instr.op
    name = _mnemonic(op)
    if op in LOAD_OPS:
        text = "%s %s, %d(%s)" % (name, reg_name(instr.rd), instr.imm or 0,
                                  reg_name(instr.rs1))
    elif op in STORE_OPS:
        text = "%s %s, %d(%s)" % (name, reg_name(instr.rs2), instr.imm or 0,
                                  reg_name(instr.rs1))
    elif op in BRANCH_OPS:
        text = "%s %s, %s, %d" % (name, reg_name(instr.rs1),
                                  reg_name(instr.rs2), instr.imm or 0)
    elif op in _SIM_OPS and not (instr.rd or instr.rs1 or instr.imm):
        text = name
    else:
        fields = []
        if instr.rd is not None:
            fields.append(reg_name(instr.rd))
        if instr.rs1 is not None:
            fields.append(reg_name(instr.rs1))
        if instr.rs2 is not None:
            fields.append(reg_name(instr.rs2))
        if instr.imm is not None:
            fields.append(str(instr.imm))
        text = name if not fields else "%s %s" % (name, ", ".join(fields))
    if instr.comment:
        text = "%-32s # %s" % (text, instr.comment)
    return text


def format_program(instrs, start_pc=0):
    """Render a whole instruction sequence with PC labels."""
    lines = []
    for index, instr in enumerate(instrs):
        lines.append("%6x:  %s" % (start_pc + 4 * index, format_instr(instr)))
    return "\n".join(lines)
