"""Analytical synthesis model: ALMs, block RAM, and Fmax per configuration.

Quartus cannot run in this reproduction, so Table 3 is regenerated from a
component-level cost model seeded with the paper's published numbers:

- the CheriCapLib per-function ALM costs of Figure 7 (measured on the same
  Stratix-10 ALM fabric), and
- the structural argument of section 3.3: *which* functions are replicated
  per vector lane versus instantiated once per SM in the shared-function
  unit is exactly what distinguishes the CHERI and CHERI (Optimised)
  configurations.

Storage follows the register-file organisation of sections 3.1-3.2
(SRF entries, VRF slots, the one-read-port metadata SRF, NVO masks, tags,
PCC metadata).  The model is parametric in the SM geometry; at the paper's
geometry (64 warps x 32 lanes, 3/8 VRF) it lands on Table 3's figures.
"""

from dataclasses import dataclass

from repro.simt.config import REGS_PER_THREAD, SMConfig

#: CheriCapLib function costs in Stratix-10 ALMs (paper Figure 7).
CAPLIB_ALMS = {
    "fromMem": 46,
    "toMem": 0,
    "setAddr": 106,
    "isAccessInBounds": 25,
    "getBase": 50,
    "getLength": 20,
    "getTop": 78,
    "setBounds": 287,
}

#: Reference point from Figure 7: a 32-bit multiplier.
MULTIPLIER_ALMS = 567

# -- calibrated structural constants ------------------------------------------
# Baseline SM: per-lane execution logic plus shared control, calibrated to
# Table 3's 126,753 ALMs at 32 lanes.
BASELINE_LANE_ALMS = 3000
BASELINE_SHARED_ALMS = 30753

#: Per-lane CHERI fast path: fromMem + setAddr + isAccessInBounds (Figure
#: 7) plus the 65-bit datapath widening and result muxing around the ALU
#: (Figure 8).
FAST_PATH_LANE_ALMS = (CAPLIB_ALMS["fromMem"] + CAPLIB_ALMS["toMem"]
                       + CAPLIB_ALMS["setAddr"]
                       + CAPLIB_ALMS["isAccessInBounds"] + 498)

#: Per-lane slow path (only replicated when the SFU slow path is off):
#: getBase + getLength + setBounds + the CRRL/CRAM rounding helpers.
SLOW_PATH_LANE_ALMS = (CAPLIB_ALMS["getBase"] + CAPLIB_ALMS["getLength"]
                       + CAPLIB_ALMS["getTop"] + CAPLIB_ALMS["setBounds"]
                       + 110)

#: Shared, once-per-SM CHERI logic: tag controller + multi-flit access.
TAG_CONTROLLER_ALMS = 500
#: Per-warp PCC comparison in Active Thread Selection (dynamic PC
#: metadata); eliminated by the static PC metadata restriction.
DYNAMIC_PCC_ALMS = 503
#: One CheriCapLib slow-path instance in the SFU plus the widened
#: request serialiser / response deserialiser.
SFU_SLOW_PATH_ALMS = 503

# Storage constants (bits).
SRF_ENTRY_BITS = 42        # base(32) + stride(8) + format tag(2)
META_SRF_VALUE_BITS = 35   # metadata(33) + format tag(2)
TCIM_BITS = 512 * 1024     # 64 KiB tightly-coupled instruction memory
MISC_BUFFER_BITS = 195 * 1024
CHERI_BUFFER_BITS = 32 * 1024   # tag cache + multi-flit buffers


@dataclass
class AreaReport:
    """One Table 3 row."""

    name: str
    alms: int
    dsps: int
    bram_kilobits: int
    fmax_mhz: int

    def row(self):
        return (self.name, self.alms, self.dsps, self.bram_kilobits,
                self.fmax_mhz)


def caplib_function_costs():
    """Figure 7: the CheriCapLib function/cost table."""
    return dict(CAPLIB_ALMS)


def _regfile_bits(config):
    """Storage of the general-purpose compressed register file."""
    arch_regs = REGS_PER_THREAD * config.num_warps
    vrf = config.vrf_slots * config.num_lanes * 32
    # The baseline SRF needs 3 read ports, implemented as two duplicated
    # 2-port SRAM instances (section 3.2).
    srf = arch_regs * SRF_ENTRY_BITS * 2
    return vrf, srf


def _metadata_bits(config):
    """Storage added by the capability-metadata register file."""
    arch_regs = REGS_PER_THREAD * config.num_warps
    threads = config.num_threads
    if not config.compress_metadata:
        # Uncompressed: full 33 bits per architectural register per thread.
        return 33 * threads * REGS_PER_THREAD, 0
    # Compressed: a metadata SRF entry per architectural vector register.
    entry = META_SRF_VALUE_BITS
    if config.nvo:
        entry += config.num_lanes  # the partial-null lane mask
    ports = 1 if config.metadata_srf_single_port else 2
    srf = arch_regs * entry * ports
    # A shared VRF adds no storage; a private metadata VRF would add half
    # a VRF worth of slots.
    vrf = 0 if config.shared_vrf else (config.vrf_slots // 2) * \
        config.num_lanes * 33
    return srf, vrf


def _pcc_bits(config):
    """Per-thread or per-warp PC-capability metadata storage."""
    if not config.enable_cheri:
        return 0
    if config.static_pc_metadata:
        return 33 * config.num_warps
    return 33 * config.num_threads


def storage_bits(config):
    """Break down on-chip storage (bits) for a configuration."""
    config.validate()
    vrf, srf = _regfile_bits(config)
    parts = {
        "gp_vrf": vrf,
        "gp_srf": srf,
        "scratchpad": config.scratchpad_bytes * 8,
        "tcim": TCIM_BITS,
        "buffers": MISC_BUFFER_BITS,
    }
    if config.enable_cheri:
        meta_srf, meta_vrf = _metadata_bits(config)
        parts["meta_rf"] = meta_srf + meta_vrf
        parts["scratchpad_tags"] = config.scratchpad_bytes // 4
        parts["pcc"] = _pcc_bits(config)
        parts["cheri_buffers"] = CHERI_BUFFER_BITS
    parts["total"] = sum(parts.values())
    return parts


def logic_alms(config):
    """Total SM logic area in ALMs for a configuration."""
    config.validate()
    lanes = config.num_lanes
    alms = BASELINE_LANE_ALMS * lanes + BASELINE_SHARED_ALMS
    if not config.enable_cheri:
        return alms
    alms += FAST_PATH_LANE_ALMS * lanes
    alms += TAG_CONTROLLER_ALMS
    if config.sfu_cheri_slow_path:
        alms += SFU_SLOW_PATH_ALMS
    else:
        alms += SLOW_PATH_LANE_ALMS * lanes
    if not config.static_pc_metadata:
        alms += DYNAMIC_PCC_ALMS
    return alms


def fmax_mhz(config):
    """Critical-path model: CHERI does not sit on the critical path.

    The paper's synthesis sweep (Table 3) shows Fmax essentially unchanged
    (180/181/180 MHz): the added capability logic is off the critical path
    (bounds checks fold into the memory pipeline).  The unoptimised CHERI
    row comes out marginally *higher* because the metadata register file
    is a plain SRAM without compression comparators.
    """
    config.validate()
    if config.enable_cheri and not config.compress_metadata:
        return 181
    return 180


def synthesis_report(config, name=None):
    """One Table 3 row for a configuration."""
    bits = storage_bits(config)
    return AreaReport(
        name=name or _config_name(config),
        alms=logic_alms(config),
        dsps=0,  # DSP inference disabled so ALM counts capture all logic
        bram_kilobits=bits["total"] // 1024,
        fmax_mhz=fmax_mhz(config),
    )


def _config_name(config):
    if not config.enable_cheri:
        return "Baseline"
    if config.compress_metadata:
        return "CHERI (Optimised)"
    return "CHERI"


def paper_geometry(factory, **kwargs):
    """The paper's evaluation geometry: 64 warps x 32 lanes, 3/8 VRF."""
    return factory(num_warps=64, num_lanes=32, vrf_fraction=0.375, **kwargs)


def table3_rows():
    """Regenerate Table 3 (all three configurations at paper geometry)."""
    rows = []
    for name, factory in (("Baseline", SMConfig.baseline),
                          ("CHERI", SMConfig.cheri),
                          ("CHERI (Optimised)", SMConfig.cheri_optimised)):
        config = paper_geometry(factory)
        rows.append(synthesis_report(config, name))
    return rows
