"""Analytical FPGA cost model (logic area, block RAM, Fmax)."""

from repro.area.model import (
    CAPLIB_ALMS,
    AreaReport,
    caplib_function_costs,
    storage_bits,
    synthesis_report,
)

__all__ = [
    "CAPLIB_ALMS",
    "AreaReport",
    "caplib_function_costs",
    "storage_bits",
    "synthesis_report",
]
