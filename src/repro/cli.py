"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``list``                      — the Table 1 benchmark suite
- ``run BENCH``                 — run one benchmark (verified) and print stats
- ``listing BENCH``             — print a benchmark kernel's compiled assembly
- ``trace BENCH``               — run with instruction tracing
- ``experiment NAME``           — regenerate one table/figure
- ``bench``                     — run the suite, report wall-clock + cycles
- ``profile BENCH``             — cycle-attributed hotspot profile
- ``diff A.json B.json``        — compare two run manifests
- ``fuzz``                      — differential fuzzing vs the golden model
- ``lockstep [BENCH...]``       — benchmarks under golden-model lockstep
- ``serve``                     — async simulation service (TCP + NDJSON)
- ``submit [BENCH...]``         — submit a grid to a running server
- ``jobs``                      — server job table / stats / drain
- ``result ID``                 — fetch one job's result from the server
- ``top``                       — live dashboard for a running serve node
- ``obs report``                — longitudinal perf trends + regression gate
- ``table3`` / ``headline``     — shortcuts for the area model / abstract

``run``/``bench`` accept ``--json`` for machine-readable output; every
``bench``/``run_suite`` invocation also writes a structured run manifest
(see ``repro.obs.manifest``).
"""

import argparse
import sys

from repro.benchsuite import ALL_BENCHMARKS, BENCHMARK_NAMES


def _add_mode_args(parser):
    parser.add_argument("--mode", default="baseline",
                        choices=("baseline", "purecap", "boundscheck"))
    parser.add_argument("--warps", type=int, default=8)
    parser.add_argument("--lanes", type=int, default=8)
    parser.add_argument("--scale", type=int, default=1)
    _add_backend_arg(parser)
    _add_opt_arg(parser)
    _add_jit_args(parser)


def _add_opt_arg(parser, default=0):
    parser.add_argument("--opt", type=int, default=default, choices=(0, 1),
                        help="kernel-compiler optimization level (0: direct "
                             "frontend output, 1: dataflow pass pipeline; "
                             "default %(default)s)")


def _add_backend_arg(parser):
    parser.add_argument("--backend", default=None,
                        choices=("scalar", "vector", "jit"),
                        help="execution backend (default: $REPRO_BACKEND "
                             "or vector; all are bit-identical)")


def _add_jit_args(parser):
    parser.add_argument("--jit-dump-dir", default=None, metavar="DIR",
                        help="write each generated JIT region closure to "
                             "DIR as region_<digest>_<pc>.py (jit backend "
                             "only)")


def _wire_jit(rt, args):
    """Apply JIT-tier CLI knobs to a freshly built runtime."""
    dump = getattr(args, "jit_dump_dir", None)
    if dump and hasattr(rt.sm.backend, "jit_dump_dir"):
        rt.sm.backend.jit_dump_dir = dump
    return rt


def _runtime(args):
    from repro.nocl import NoCLRuntime
    from repro.simt import SMConfig
    geometry = dict(num_warps=args.warps, num_lanes=args.lanes,
                    opt=getattr(args, "opt", 0))
    if getattr(args, "backend", None):
        geometry["backend"] = args.backend
    if args.mode == "purecap":
        config = SMConfig.cheri_optimised(**geometry)
    else:
        config = SMConfig.baseline(**geometry)
    return _wire_jit(NoCLRuntime(args.mode, config=config), args)


def cmd_list(_args):
    print("%-12s %-45s %s" % ("name", "description", "origin"))
    for bench in ALL_BENCHMARKS.values():
        print("%-12s %-45s %s" % (bench.name, bench.description,
                                  bench.origin))
    return 0


def _resolve_benchmark(name):
    """Benchmark lookup by name, case-insensitively (CLI convenience)."""
    if name in ALL_BENCHMARKS:
        return ALL_BENCHMARKS[name]
    folded = {key.lower(): key for key in ALL_BENCHMARKS}
    if name.lower() in folded:
        return ALL_BENCHMARKS[folded[name.lower()]]
    raise SystemExit("unknown benchmark %r (choose from %s)"
                     % (name, ", ".join(BENCHMARK_NAMES)))


def cmd_run(args):
    bench = ALL_BENCHMARKS[args.benchmark]
    rt = _runtime(args)
    stats = bench.run(rt, scale=args.scale)
    if args.json:
        import json
        print(json.dumps({
            "benchmark": bench.name, "mode": args.mode,
            "scale": args.scale, "opt": args.opt,
            "geometry": {"num_warps": args.warps, "num_lanes": args.lanes},
            "stats": stats.as_dict(),
        }, indent=1, sort_keys=True))
        return 0
    print("%s [%s -O%d] PASSED self test" % (bench.name, args.mode,
                                             args.opt))
    print("  cycles=%d instrs=%d IPC=%.2f" % (stats.cycles,
                                              stats.instrs_issued,
                                              stats.ipc))
    print("  DRAM: %d bytes (%d spill)" % (stats.dram_total_bytes,
                                           stats.dram_spill_bytes))
    if args.mode == "purecap":
        print("  capability registers/thread: %d of 32"
              % stats.cap_regs_per_thread)
    return 0


def cmd_listing(args):
    from repro.nocl.compiler import compile_kernel
    bench = ALL_BENCHMARKS[args.benchmark]
    # Find the benchmark module's kernel(s) by naming convention.
    import inspect

    from repro.nocl.dsl import KernelSource
    mod = inspect.getmodule(type(bench))
    kernels = [obj for _, obj in vars(mod).items()
               if isinstance(obj, KernelSource)]
    for source in kernels:
        compiled = compile_kernel(source, args.mode, opt=args.opt)
        print("== %s [%s -O%d], %d instructions =="
              % (source.name, args.mode, args.opt, len(compiled.instrs)))
        if compiled.opt_report and compiled.opt_report.get("passes"):
            print("-- opt: %s" % _render_opt_report(compiled.opt_report))
        print(compiled.listing())
        print()
    return 0


def _render_opt_report(report):
    """One-line summary of a kernel's ``repro.nocl.opt`` pass report."""
    passes = ", ".join("%s:%d" % (name, count)
                       for name, count in report.get("passes", {}).items())
    text = "%d -> %d items (%s)" % (report.get("items_before", 0),
                                    report.get("items_after", 0),
                                    passes or "no changes")
    removed = (report.get("bounds_dominated", 0)
               + report.get("bounds_range_proved", 0))
    if removed:
        text += ", %d bounds check(s) removed (%d dominated, %d proved)" % (
            removed, report.get("bounds_dominated", 0),
            report.get("bounds_range_proved", 0))
    return text


def cmd_trace(args):
    from repro.eval.tracing import TraceRecorder
    bench = ALL_BENCHMARKS[args.benchmark]
    rt = _runtime(args)
    recorder = TraceRecorder(limit=args.limit, only_warp=args.warp,
                             num_lanes=rt.sm.cfg.num_lanes)
    rt.sm.trace = recorder
    bench.run(rt, scale=args.scale)
    print(recorder.render())
    return 0


def cmd_experiment(args):
    from repro.eval import experiments, report
    name = args.name
    if name == "fig6":
        print(report.render_fig6(
            experiments.fig6_cheri_instruction_frequency()))
    elif name == "table2":
        print(report.render_table2(experiments.table2_rf_compression()))
    elif name == "fig7":
        print(report.render_fig7(experiments.fig7_caplib_costs()))
    elif name == "fig10":
        print(report.render_fig10(experiments.fig10_vrf_residency()))
    elif name == "fig11":
        print(report.render_fig11(
            experiments.fig11_capability_registers()))
    elif name == "fig12":
        print(report.render_fig12(experiments.fig12_dram_traffic()))
    elif name == "fig13":
        rows, mean = experiments.fig13_execution_overhead()
        print(report.render_overheads(
            "Figure 13: CHERI (Optimised) execution-time overhead",
            rows, mean))
    elif name == "fig14":
        rows, mean = experiments.fig14_boundscheck_overhead()
        print(report.render_overheads(
            "Figure 14: software bounds-checking overhead", rows, mean))
    elif name == "table3":
        print(report.render_table3(experiments.table3_synthesis()))
    elif name == "ablations":
        from repro.eval.ablations import (
            hardware_ablation,
            render_ablation,
            runtime_ablation,
        )
        print(render_ablation(runtime_ablation(), hardware_ablation()))
    elif name == "headline":
        summary = experiments.headline_summary()
        for key, value in summary.items():
            print("  %-32s %.2f%%" % (key, 100 * value))
    else:
        print("unknown experiment %r" % name, file=sys.stderr)
        return 2
    return 0


def _render_regions(backend):
    """The ``repro profile --regions`` view: per-region compiled-versus-
    interpreted retire shares, plus why hot PCs escaped compilation."""
    summary = backend.jit_summary()
    report = backend.region_report()
    out = []
    out.append("  %d region(s) compiled (+%d masked variant(s), %d cache "
               "hit(s)), %.3fs codegen, %.1f%% of retired steps inside "
               "covered regions (%d of %d outside)"
               % (summary["compiled_regions"],
                  summary["compiled_masked_variants"],
                  summary["cache_hits"], summary["codegen_seconds"],
                  100 * summary["step_coverage"],
                  summary["steps_outside_regions"],
                  summary["steps_total"]))
    rows = sorted(report["regions"], key=lambda r: -r["steps_retired"])
    if rows:
        out.append("")
        out.append("  %-8s %-6s %5s %6s %11s %11s %7s %12s %7s %s"
                   % ("pc", "lines", "len", "spec", "retired",
                      "compiled", "miss", "entries f/m", "m-miss",
                      "state"))
        for row in rows:
            lines = row["source_lines"]
            span = ("%d-%d" % (lines[0], lines[-1]) if len(lines) > 1
                    else str(lines[0]) if lines else "-")
            compiled_steps = row["fused_steps"] + row["masked_steps"]
            share = (100.0 * compiled_steps / row["steps_retired"]
                     if row["steps_retired"] else 0.0)
            state = "demoted" if row["demoted"] else "active"
            if row["masked_demoted"]:
                state += "/m-demoted"
            out.append("  %-8s %-6s %5d %6s %11d %10.1f%% %7d %12s %7d %s"
                       % ("0x%x" % row["pc"], span, row["length"],
                          "%d/%d" % (row["specialized_steps"],
                                     row["length"]),
                          row["steps_retired"], share, row["arm_misses"],
                          "%d/%d" % (row["full_entries"],
                                     row["masked_entries"]),
                          row["masked_arm_misses"], state))
            masks = {mask: count
                     for mask, count in row["entry_masks"].items()
                     if count}
            if len(masks) > 1 or row["masked_entries"]:
                top = sorted(masks.items(), key=lambda kv: -kv[1])[:4]
                out.append("  %8s mask %s%s"
                           % ("", "  ".join("%s:%d" % kv for kv in top),
                              "  ..." if len(masks) > 4 else ""))
    misses = report["uncompiled_hot_pcs"]
    if misses:
        out.append("")
        out.append("  hot PCs that escaped compilation:")
        for row in sorted(misses, key=lambda r: -r["count"])[:20]:
            out.append("    0x%-6x seen %6d: %s"
                       % (row["pc"], row["count"], row["reason"]))
    return "\n".join(out)


def cmd_profile(args):
    """Cycle-attributed profile of one benchmark (nvprof-style)."""
    from repro.eval import runner
    from repro.nocl import NoCLRuntime
    from repro.obs import ProfileCollector, TimelineCollector, attach, detach
    bench = _resolve_benchmark(args.benchmark)
    overrides = {}
    if args.warps is not None:
        overrides["num_warps"] = args.warps
    if args.lanes is not None:
        overrides["num_lanes"] = args.lanes
    if args.backend is not None:
        overrides["backend"] = args.backend
    overrides["opt"] = args.opt
    mode, config = runner.config_for(args.config, **overrides)
    rt = _wire_jit(NoCLRuntime(mode, config=config), args)
    if args.regions and not hasattr(rt.sm.backend, "region_report"):
        print("profile --regions needs the jit backend "
              "(pass --backend jit or set REPRO_BACKEND=jit)",
              file=sys.stderr)
        return 2
    profiler = ProfileCollector()
    sinks = [profiler]
    timeline = None
    if args.perfetto is not None:
        timeline = TimelineCollector()
        sinks.append(timeline)
    if args.regions:
        # Attached probes run the instrumented scheduler, which bypasses
        # hot-region formation entirely; the region view needs the quiet
        # loop, and all its counters live on the backend.
        print("profile: --regions runs unprobed (the region view needs "
              "the quiet hot-path loop); cycle-attribution views are "
              "empty for this run", file=sys.stderr)
        stats = bench.run(rt, scale=args.scale)
    else:
        attach(rt.sm, *sinks)
        try:
            stats = bench.run(rt, scale=args.scale)
        finally:
            detach(rt.sm)
    opt_reports = {program.name: program.opt_report
                   for program in rt._compiled.values()
                   if program.opt_report is not None}
    if args.json:
        import json
        payload = {
            "benchmark": bench.name, "config": args.config, "mode": mode,
            "scale": args.scale, "opt": args.opt, "cycles": stats.cycles,
            "probed": not args.regions,
            "profile": profiler.as_dict(),
        }
        if opt_reports:
            payload["opt_reports"] = opt_reports
        backend = rt.sm.backend
        if hasattr(backend, "jit_summary"):
            payload["jit"] = backend.jit_summary()
            payload["jit_regions"] = backend.region_report()
        print(json.dumps(payload, indent=1, sort_keys=True))
    elif args.regions:
        print("%s [%s] JIT region profile" % (bench.name, args.config))
        print(_render_regions(rt.sm.backend))
    elif args.pc:
        print(profiler.render_pc(stats, limit=args.limit or 40))
    elif args.per_warp:
        print(profiler.render_warps())
    elif args.timeline:
        print(profiler.render_timeline())
    else:
        print("%s [%s] cycle profile by source line"
              % (bench.name, args.config))
        print(profiler.render_source(stats, limit=args.limit))
    if opt_reports and not args.json:
        for name, report in sorted(opt_reports.items()):
            print("opt[-O%d] %s: %s"
                  % (args.opt, name, _render_opt_report(report)))
    if timeline is not None:
        path = args.perfetto
        if path == "":
            import os
            os.makedirs("results", exist_ok=True)
            path = "results/%s_%s.perfetto.json" % (bench.name.lower(),
                                                    args.config)
        timeline.export(path)
        print("perfetto trace written to %s (load at https://ui.perfetto.dev)"
              % path)
    return 0


def cmd_fuzz(args):
    kinds = tuple(k.strip() for k in args.kinds.split(",") if k.strip()) \
        if args.kinds else None
    opt_levels = (0, 1) if args.opt is None else (args.opt,)
    if args.jobs and args.jobs > 1:
        from repro.check.fuzz import run_fuzz_parallel
        report = run_fuzz_parallel(seed=args.seed, budget=args.budget,
                                   jobs=args.jobs,
                                   time_budget=args.time_budget,
                                   out_dir=args.out, verbose=args.verbose,
                                   log=print, backend=args.backend,
                                   kinds=kinds, opt_levels=opt_levels)
    else:
        from repro.check.fuzz import run_fuzz
        report = run_fuzz(seed=args.seed, budget=args.budget,
                          time_budget=args.time_budget, out_dir=args.out,
                          verbose=args.verbose, log=print,
                          backend=args.backend, kinds=kinds,
                          opt_levels=opt_levels)
    print(report.summary())
    return 0 if report.ok else 1


def cmd_lockstep(args):
    from repro.check.lockstep import run_lockstep_sweep
    names = [_resolve_benchmark(name).name
             for name in (args.benchmarks or list(BENCHMARK_NAMES))]
    failures = run_lockstep_sweep(names, args.configs, scale=args.scale,
                                  jobs=args.jobs, log=print,
                                  backend=args.backend, opt=args.opt)
    return 1 if failures else 0


def cmd_diff(args):
    from repro.obs import manifest as mf
    try:
        old = mf.load_manifest(args.old)
        new = mf.load_manifest(args.new)
    except (OSError, ValueError) as exc:
        print("diff: %s" % exc, file=sys.stderr)
        return 2
    rows = mf.diff_manifests(old, new, threshold=args.threshold)
    print("manifest diff: %s (%s -O%d) -> %s (%s -O%d), threshold %.1f%%"
          % (args.old, old.get("config", "?"), mf.manifest_opt(old),
             args.new, new.get("config", "?"), mf.manifest_opt(new),
             100 * args.threshold))
    print(mf.render_diff(rows, old_label="old", new_label="new",
                         verbose=args.verbose))
    return 1 if any(row["regressed"] for row in rows) else 0


def cmd_bench(args):
    import time

    from repro.eval import runner
    if args.no_cache:
        runner.set_disk_cache(False)
    config_names = args.configs or ["cheri_opt"]
    for config_name in config_names:
        if config_name not in BENCH_CONFIGS:
            print("unknown configuration %r (choose from %s)"
                  % (config_name, ", ".join(BENCH_CONFIGS)), file=sys.stderr)
            return 2
    overrides = {}
    if args.warps is not None:
        overrides["num_warps"] = args.warps
    if args.lanes is not None:
        overrides["num_lanes"] = args.lanes
    if args.backend is not None:
        overrides["backend"] = args.backend
    if args.opt:
        overrides["opt"] = args.opt
    total_start = time.perf_counter()
    if args.json:
        import json
        payload = {"configs": {}, "scale": args.scale}
        for config_name in config_names:
            start = time.perf_counter()
            results = runner.run_suite(config_name, scale=args.scale,
                                       jobs=args.jobs, **overrides)
            payload["configs"][config_name] = {
                "wall_seconds": round(time.perf_counter() - start, 6),
                "benchmarks": {
                    name: {
                        "cycles": result.stats.cycles,
                        "instrs_issued": result.stats.instrs_issued,
                        "ipc": round(result.stats.ipc, 6),
                        "dram_total_bytes": result.stats.dram_total_bytes,
                        "cache_source": (result.meta.source if result.meta
                                         else "memo"),
                        "sim_seconds": round(
                            result.meta.wall_seconds, 6) if result.meta
                        else 0.0,
                    }
                    for name, result in results.items()
                },
            }
        payload["wall_seconds"] = round(time.perf_counter() - total_start, 6)
        payload["runner_counters"] = runner.RUNNER_STATS.snapshot()
        print(json.dumps(payload, indent=1, sort_keys=True))
        return 0
    for config_name in config_names:
        start = time.perf_counter()
        results = runner.run_suite(config_name, scale=args.scale,
                                   jobs=args.jobs, **overrides)
        wall = time.perf_counter() - start
        print("== %s (scale=%d): %.2fs wall ==" % (config_name, args.scale,
                                                   wall))
        print("%-12s %12s %10s %9s  %s" % ("benchmark", "cycles", "instrs",
                                           "sim s", "source"))
        for name, result in results.items():
            meta = result.meta
            print("%-12s %12d %10d %9.3f  %s"
                  % (name, result.stats.cycles, result.stats.instrs_issued,
                     meta.wall_seconds if meta else 0.0,
                     meta.source if meta else "memo"))
        print()
    counters = runner.RUNNER_STATS.snapshot()
    print("total %.2fs wall | cache: %d memo, %d disk, %d simulated "
          "(%.2fs simulating)"
          % (time.perf_counter() - total_start, counters["memo_hits"],
             counters["disk_hits"], counters["misses"],
             counters["sim_seconds"]))
    print("disk cache: %s%s" % (runner.cache_dir(),
                                " (disabled)" if args.no_cache else ""))
    return 0


def cmd_serve(args):
    from repro.serve.server import serve_main
    return serve_main(host=args.host, port=args.port, workers=args.workers,
                      max_pending=args.max_pending,
                      job_timeout=args.job_timeout,
                      max_retries=args.retries, verbose=args.verbose,
                      metrics_interval=args.metrics_interval)


def cmd_top(args):
    from repro.serve.top import run_top
    from repro.serve.client import default_port
    port = args.port if args.port is not None else default_port()
    return run_top(args.host, port, interval=args.interval,
                   iterations=args.iterations, once=args.once)


def cmd_obs(args):
    from repro.obs.trend import trend_report
    if args.obs_command != "report":
        print("unknown obs subcommand %r" % args.obs_command,
              file=sys.stderr)
        return 2
    text, regressed = trend_report(
        bench_path=args.bench, manifest_paths=args.manifests or (),
        threshold=args.threshold, breakdown=args.breakdown)
    if args.json:
        import json
        import os

        from repro.obs.trend import (
            BENCH_THRESHOLD,
            bench_trends,
            load_bench_history,
        )
        rows = []
        if args.bench and os.path.exists(args.bench):
            rows = bench_trends(
                load_bench_history(args.bench),
                threshold=(args.threshold if args.threshold is not None
                           else BENCH_THRESHOLD),
                breakdown=args.breakdown)
        print(json.dumps({"rows": rows, "regressed": regressed},
                         indent=1, sort_keys=True, default=list))
    else:
        print(text)
    if regressed:
        print("obs report: %d regression(s) beyond threshold" % regressed,
              file=sys.stderr)
    return 1 if (args.gate and regressed) else 0


def _client(args):
    from repro.serve.client import ServeClient
    return ServeClient(host=args.host, port=args.port)


def _print_event(message):
    name = message.get("event", "?")
    label = message.get("label", "")
    if name == "progress":
        print("  progress: %d/%d done" % (message.get("done", 0),
                                          message.get("total", 0)))
    elif name == "grid_done":
        print("grid %s complete: %d job(s), %d failed"
              % (message.get("grid"), message.get("jobs", 0),
                 message.get("failed", 0)))
    elif name in ("done", "cached"):
        payload = message.get("payload") or {}
        stats = payload.get("stats") or {}
        detail = ""
        if "cycles" in stats:
            detail = "  cycles=%d source=%s" % (
                stats["cycles"], payload.get("cache_source", "?"))
        print("  %-8s %-10s %s%s" % (name, message.get("id", ""),
                                     label, detail))
    else:
        extra = ""
        if message.get("error"):
            extra = "  (%s)" % message["error"]
        if name == "retry":
            extra = "  (attempt %s of %s)" % (message.get("attempt"),
                                              message.get("of"))
        print("  %-8s %-10s %s%s" % (name, message.get("id", ""),
                                     label, extra))


def cmd_submit(args):
    import json

    from repro.serve.client import ServeError
    benchmarks = ([_resolve_benchmark(name).name for name in args.benchmarks]
                  if args.benchmarks else None)
    overrides = {}
    if args.warps is not None:
        overrides["num_warps"] = args.warps
    if args.lanes is not None:
        overrides["num_lanes"] = args.lanes
    if args.opt:
        overrides["opt"] = args.opt
    body = dict(benchmarks=benchmarks, configs=args.configs or None,
                scale=args.scale, overrides=overrides, verify=args.verify)
    if args.scales:
        body["scales"] = args.scales
    try:
        with _client(args) as client:
            if args.no_follow:
                reply = client.submit(**body)
                if args.json:
                    print(json.dumps(reply, indent=1, sort_keys=True))
                else:
                    print("grid %s: %d job(s) submitted"
                          % (reply["grid"], len(reply["jobs"])))
                    for job in reply["jobs"]:
                        print("  %-10s %-9s %s" % (job["id"], job["state"],
                                                   job["label"]))
                return 0
            failed = 0
            for message in client.submit_and_stream(**body):
                if "event" not in message:      # the submission reply
                    if not args.json:
                        print("grid %s: %d job(s)"
                              % (message["grid"], len(message["jobs"])))
                    continue
                if args.json:
                    print(json.dumps(message, sort_keys=True))
                else:
                    _print_event(message)
                if message.get("event") == "grid_done":
                    failed = message.get("failed", 0)
            return 1 if failed else 0
    except (ServeError, OSError) as exc:
        print("submit: %s" % exc, file=sys.stderr)
        return 2


def cmd_jobs(args):
    import json

    from repro.serve.client import ServeError
    try:
        with _client(args) as client:
            if args.drain:
                reply = client.drain()
                stats = reply.get("stats", {})
                print("server drained: %d executed, %d cache hit(s), "
                      "%d dedup hit(s)%s"
                      % (stats.get("executed", 0),
                         stats.get("cache_hits", 0),
                         stats.get("dedup_hits", 0)
                         + stats.get("memo_hits", 0),
                         ", manifest %s" % reply["manifest"]
                         if reply.get("manifest") else ""))
                return 0
            if args.stats:
                reply = client.stats()
                if args.json:
                    print(json.dumps(reply, indent=1, sort_keys=True))
                    return 0
                stats = reply["stats"]
                for key in sorted(stats):
                    print("  %-24s %s" % (key, stats[key]))
                print("  workers:")
                for worker in reply.get("workers", []):
                    print("    #%d pid=%s alive=%s job=%s done=%d"
                          % (worker["worker_id"], worker["pid"],
                             worker["alive"], worker["job"] or "-",
                             worker["jobs_done"]))
                return 0
            reply = client.jobs()
            if args.json:
                print(json.dumps(reply, indent=1, sort_keys=True))
                return 0
            jobs = reply["jobs"]
            if not jobs:
                print("(no jobs)")
                return 0
            print("%-10s %-9s %-4s %8s  %s"
                  % ("id", "state", "try", "wall s", "label"))
            for job in jobs:
                print("%-10s %-9s %-4d %8s  %s"
                      % (job["id"], job["state"], job["attempts"] + 1,
                         "%.3f" % job["wall_seconds"]
                         if "wall_seconds" in job else "-",
                         job["label"]))
            return 0
    except (ServeError, OSError) as exc:
        print("jobs: %s" % exc, file=sys.stderr)
        return 2


def cmd_result(args):
    import json

    from repro.serve.client import ServeError
    try:
        with _client(args) as client:
            reply = client.result(args.id, wait=not args.no_wait,
                                  timeout=args.timeout)
            job = reply["job"]
            if args.json:
                print(json.dumps(job, indent=1, sort_keys=True))
                return 0 if job["state"] in ("done", "cached") else 1
            print("%s  %s  [%s]" % (job["id"], job["label"], job["state"]))
            if job.get("error"):
                print("  error: %s" % job["error"])
            payload = job.get("payload") or {}
            stats = payload.get("stats") or {}
            if stats:
                print("  cycles=%d instrs=%d dram=%d bytes (source=%s)"
                      % (stats.get("cycles", 0),
                         stats.get("instrs_issued", 0),
                         stats.get("dram_total_bytes", 0),
                         payload.get("cache_source", "?")))
            if payload.get("lockstep"):
                lockstep = payload["lockstep"]
                print("  lockstep: %d retire events, %d instructions"
                      % (lockstep.get("retired", 0),
                         lockstep.get("instructions", 0)))
            return 0 if job["state"] in ("done", "cached") else 1
    except (ServeError, OSError) as exc:
        print("result: %s" % exc, file=sys.stderr)
        return 2


EXPERIMENTS = ("fig6", "fig7", "fig10", "fig11", "fig12", "fig13", "fig14",
               "table2", "table3", "ablations", "headline")

BENCH_CONFIGS = ("baseline", "cheri", "cheri_opt", "boundscheck",
                 "cheri_opt_no_nvo", "cheri_opt_split_vrf",
                 "cheri_opt_dual_port_srf", "cheri_opt_lane_bounds",
                 "cheri_opt_dynamic_pcc")


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro",
        description="CHERI-SIMT reproduction: benchmarks and experiments")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the benchmark suite")

    run = sub.add_parser("run", help="run one benchmark")
    run.add_argument("benchmark", choices=BENCHMARK_NAMES)
    run.add_argument("--json", action="store_true",
                     help="print full stats as JSON")
    _add_mode_args(run)

    listing = sub.add_parser("listing", help="print compiled assembly")
    listing.add_argument("benchmark", choices=BENCHMARK_NAMES)
    listing.add_argument("--mode", default="purecap",
                         choices=("baseline", "purecap", "boundscheck"))
    _add_opt_arg(listing)

    trace = sub.add_parser("trace", help="run with instruction tracing")
    trace.add_argument("benchmark", choices=BENCHMARK_NAMES)
    trace.add_argument("--limit", type=int, default=200)
    trace.add_argument("--warp", type=int, default=0)
    _add_mode_args(trace)

    experiment = sub.add_parser("experiment",
                                help="regenerate a table or figure")
    experiment.add_argument("name", choices=EXPERIMENTS)

    bench = sub.add_parser(
        "bench", help="run the benchmark suite and report wall-clock")
    bench.add_argument("configs", nargs="*", metavar="CONFIG",
                       help="configurations to run, from: %s "
                            "(default: cheri_opt)" % ", ".join(BENCH_CONFIGS))
    bench.add_argument("--jobs", type=int, default=None,
                       help="worker processes (default: cpu count)")
    bench.add_argument("--scale", type=int, default=1,
                       help="problem-size multiplier")
    bench.add_argument("--no-cache", action="store_true",
                       help="bypass the persistent disk cache")
    bench.add_argument("--json", action="store_true",
                       help="machine-readable per-benchmark results")
    bench.add_argument("--warps", type=int, default=None,
                       help="override the evaluation warp count")
    bench.add_argument("--lanes", type=int, default=None,
                       help="override the evaluation lane count")
    _add_backend_arg(bench)
    _add_opt_arg(bench)

    profile = sub.add_parser(
        "profile",
        help="cycle-attributed hotspot profile (per source line or PC)")
    profile.add_argument("benchmark", metavar="BENCH",
                         help="benchmark name (case-insensitive), one of: %s"
                              % ", ".join(BENCHMARK_NAMES))
    profile.add_argument("--config", default="cheri_opt",
                         choices=BENCH_CONFIGS,
                         help="evaluation configuration (default: cheri_opt)")
    view = profile.add_mutually_exclusive_group()
    view.add_argument("--source", action="store_true",
                      help="attribute cycles to DSL source lines (default)")
    view.add_argument("--pc", action="store_true",
                      help="attribute cycles to instruction PCs")
    view.add_argument("--per-warp", action="store_true",
                      help="per-warp occupancy and stall-cause breakdown")
    view.add_argument("--timeline", action="store_true",
                      help="coarse issue/stall activity strip over time")
    view.add_argument("--regions", action="store_true",
                      help="per-region JIT view: compiled vs interpreted "
                           "retire share, arm misses, and why hot PCs "
                           "escaped compilation (jit backend only; runs "
                           "unprobed)")
    profile.add_argument("--json", action="store_true",
                         help="dump the whole profile as JSON (with "
                              "--regions: the JIT region payload, "
                              "probed=false)")
    profile.add_argument("--perfetto", nargs="?", const="", default=None,
                         metavar="OUT.json",
                         help="also export a Perfetto/Chrome trace (default "
                              "path: results/<bench>_<config>.perfetto.json)")
    profile.add_argument("--limit", type=int, default=None,
                         help="show at most N rows")
    profile.add_argument("--scale", type=int, default=1)
    profile.add_argument("--warps", type=int, default=None,
                         help="override the evaluation warp count")
    profile.add_argument("--lanes", type=int, default=None,
                         help="override the evaluation lane count")
    _add_backend_arg(profile)
    _add_opt_arg(profile)
    _add_jit_args(profile)

    diff = sub.add_parser(
        "diff", help="compare two run manifests, flag metric regressions")
    diff.add_argument("old", help="baseline manifest JSON")
    diff.add_argument("new", help="candidate manifest JSON")
    diff.add_argument("--threshold", type=float, default=0.02,
                      help="relative growth tolerated before a "
                           "higher-is-worse metric counts as regressed "
                           "(default: 0.02)")
    diff.add_argument("--verbose", action="store_true",
                      help="also show unchanged metrics")

    fuzz = sub.add_parser(
        "fuzz", help="differential fuzzing against the golden-model "
                     "interpreter (see repro.check)")
    fuzz.add_argument("--seed", type=int, default=0,
                      help="fuzz-run seed; every case is reconstructible "
                           "from (seed, index)")
    fuzz.add_argument("--budget", type=int, default=200,
                      help="number of cases to run (default: 200)")
    fuzz.add_argument("--time-budget", type=float, default=None,
                      metavar="SECONDS",
                      help="stop after this many seconds instead")
    fuzz.add_argument("--out", default="results/fuzz",
                      help="directory for shrunk reproducer files "
                           "(default: results/fuzz)")
    fuzz.add_argument("--verbose", action="store_true",
                      help="log every case, not just failures")
    fuzz.add_argument("--jobs", type=int, default=None,
                      help="shard the budget across N worker processes "
                           "with deterministic per-shard sub-seeds")
    fuzz.add_argument("--kinds", default=None, metavar="KIND[,KIND...]",
                      help="bias the run to these schedule kinds (e.g. "
                           "'branchy' for a divergence soak); other "
                           "rotation slots are skipped, case identities "
                           "are unchanged")
    fuzz.add_argument("--opt", type=int, default=None, choices=(0, 1),
                      help="run generated kernels at this single compiler "
                           "opt level only (default: differential O0 vs O1,"
                           " cross-checked bit-for-bit)")
    _add_backend_arg(fuzz)

    lockstep = sub.add_parser(
        "lockstep", help="run benchmarks with the golden-model lockstep "
                         "checker attached")
    lockstep.add_argument("benchmarks", nargs="*", metavar="BENCH",
                          help="benchmarks to check (default: all)")
    lockstep.add_argument("--configs", nargs="*",
                          default=["baseline", "cheri_opt", "boundscheck"],
                          choices=BENCH_CONFIGS,
                          help="configurations to check under")
    lockstep.add_argument("--scale", type=int, default=1)
    lockstep.add_argument("--jobs", type=int, default=None,
                          help="run the benchmark x config sweep across N "
                               "worker processes (default: serial)")
    _add_backend_arg(lockstep)
    _add_opt_arg(lockstep)

    from repro.serve.protocol import DEFAULT_PORT

    def _add_client_args(sub_parser):
        sub_parser.add_argument("--host", default="127.0.0.1")
        sub_parser.add_argument("--port", type=int, default=None,
                                help="server port (default: "
                                     "$REPRO_SERVE_PORT or %d)"
                                     % DEFAULT_PORT)

    serve = sub.add_parser(
        "serve", help="run the asynchronous simulation service")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=DEFAULT_PORT,
                       help="TCP port (0 picks a free one; default: %d)"
                            % DEFAULT_PORT)
    serve.add_argument("--workers", type=int, default=None,
                       help="worker processes (default: cpu count - 1)")
    serve.add_argument("--max-pending", type=int, default=256,
                       help="bounded admission queue: max non-terminal "
                            "jobs (default: 256)")
    serve.add_argument("--job-timeout", type=float, default=300.0,
                       help="per-job wall-clock timeout in seconds "
                            "(default: 300)")
    serve.add_argument("--retries", type=int, default=1,
                       help="crash retries per job (default: 1)")
    serve.add_argument("--verbose", action="store_true",
                       help="log scheduling decisions")
    serve.add_argument("--metrics-interval", type=float, default=30.0,
                       metavar="SECONDS",
                       help="cadence of the NDJSON metrics time-series "
                            "written next to the manifests (<= 0 "
                            "disables; default: 30)")

    top = sub.add_parser(
        "top", help="live dashboard for a running serve node")
    top.add_argument("--interval", type=float, default=1.0,
                     help="refresh cadence in seconds (default: 1)")
    top.add_argument("--iterations", type=int, default=None,
                     help="stop after N frames (default: until ctrl-c)")
    top.add_argument("--once", action="store_true",
                     help="print a single frame without cursor control "
                          "and exit (scriptable health check)")
    _add_client_args(top)

    obs = sub.add_parser(
        "obs", help="observability reports over recorded telemetry")
    obs_sub = obs.add_subparsers(dest="obs_command", required=True)
    obs_report = obs_sub.add_parser(
        "report", help="longitudinal perf trends over BENCH_runner.json "
                       "and manifest chains, with regression flags")
    obs_report.add_argument("--bench", default="BENCH_runner.json",
                            help="BENCH history path (default: "
                                 "BENCH_runner.json)")
    obs_report.add_argument("--manifests", nargs="*", default=None,
                            metavar="MANIFEST.json",
                            help="chronological manifest sequence to "
                                 "chain-diff")
    obs_report.add_argument("--threshold", type=float, default=None,
                            help="relative regression threshold "
                                 "(default: 10%% wall-clock, 2%% "
                                 "manifest metrics)")
    obs_report.add_argument("--breakdown", action="store_true",
                            help="also trend per-benchmark cold-serial "
                                 "seconds")
    obs_report.add_argument("--json", action="store_true",
                            help="machine-readable trend rows")
    obs_report.add_argument("--gate", action="store_true",
                            help="exit non-zero when any metric "
                                 "regressed (CI gating)")

    submit = sub.add_parser(
        "submit", help="submit a benchmark x config grid to the server")
    submit.add_argument("benchmarks", nargs="*", metavar="BENCH",
                        help="benchmarks (case-insensitive; default: all)")
    submit.add_argument("--configs", nargs="*", default=None,
                        choices=BENCH_CONFIGS,
                        help="configurations (default: cheri_opt)")
    submit.add_argument("--scale", type=int, default=1)
    submit.add_argument("--scales", nargs="*", type=int, default=None,
                        help="several scales (overrides --scale)")
    submit.add_argument("--warps", type=int, default=None,
                        help="override the evaluation warp count")
    submit.add_argument("--lanes", type=int, default=None,
                        help="override the evaluation lane count")
    _add_opt_arg(submit)
    submit.add_argument("--verify", action="store_true",
                        help="run each job under golden-model lockstep")
    submit.add_argument("--no-follow", action="store_true",
                        help="submit and return without streaming events")
    submit.add_argument("--json", action="store_true",
                        help="print raw NDJSON replies/events")
    _add_client_args(submit)

    jobs = sub.add_parser(
        "jobs", help="job table / server stats / drain")
    jobs.add_argument("--stats", action="store_true",
                      help="server metrics + worker table instead")
    jobs.add_argument("--drain", action="store_true",
                      help="drain in-flight jobs and stop the server")
    jobs.add_argument("--json", action="store_true")
    _add_client_args(jobs)

    result = sub.add_parser(
        "result", help="fetch one job's result from the server")
    result.add_argument("id", help="job id (jNNNNNN) or content key")
    result.add_argument("--no-wait", action="store_true",
                        help="return immediately even if not finished")
    result.add_argument("--timeout", type=float, default=None,
                        help="max seconds to wait")
    result.add_argument("--json", action="store_true")
    _add_client_args(result)
    return parser


def main(argv=None):
    args = build_parser().parse_args(argv)
    handlers = {
        "list": cmd_list,
        "run": cmd_run,
        "listing": cmd_listing,
        "trace": cmd_trace,
        "experiment": cmd_experiment,
        "bench": cmd_bench,
        "profile": cmd_profile,
        "diff": cmd_diff,
        "fuzz": cmd_fuzz,
        "lockstep": cmd_lockstep,
        "serve": cmd_serve,
        "submit": cmd_submit,
        "jobs": cmd_jobs,
        "result": cmd_result,
        "top": cmd_top,
        "obs": cmd_obs,
    }
    try:
        return handlers[args.command](args)
    except BrokenPipeError:
        # Output piped into a pager that quit early; not an error.
        return 0


if __name__ == "__main__":
    sys.exit(main())
