"""Quickstart: write a CUDA-style kernel once, run it in all three modes.

This is the paper's core workflow: the *same* kernel source runs with no
memory safety (baseline), with hardware capability protection (purecap —
"simply recompiled" for CHERI), or with Rust-style software bounds checks
(boundscheck).  Results are identical; costs differ.

Run:  python examples/quickstart.py
"""

from repro.isa.instructions import CHERI_OPS
from repro.nocl import NoCLRuntime, i32, kernel, ptr


@kernel
def saxpy_int(n: i32, a: i32, x: ptr[i32], y: ptr[i32], out: ptr[i32]):
    i = threadIdx.x + blockIdx.x * blockDim.x
    while i < n:
        out[i] = a * x[i] + y[i]
        i += blockDim.x * gridDim.x


def run_mode(mode):
    rt = NoCLRuntime(mode)
    n = 1024
    x = rt.alloc(i32, n)
    y = rt.alloc(i32, n)
    out = rt.alloc(i32, n)
    rt.upload(x, list(range(n)))
    rt.upload(y, [2 * i for i in range(n)])
    stats = rt.launch(saxpy_int, grid_dim=8, block_dim=32,
                      args=[n, 3, x, y, out])
    result = rt.download(out)
    assert result == [3 * i + 2 * i for i in range(n)], "wrong results!"
    cheri_instrs = sum(c for op, c in stats.opcode_counts.items()
                       if op in CHERI_OPS)
    print("%-12s cycles=%-8d instrs=%-8d IPC=%.2f  CHERI instrs=%d"
          % (mode, stats.cycles, stats.instrs_issued, stats.ipc,
             cheri_instrs))
    return stats


def main():
    print("saxpy on the simulated SIMTight SM, one kernel, three modes:\n")
    baseline = run_mode("baseline")
    purecap = run_mode("purecap")
    checked = run_mode("boundscheck")
    print()
    print("CHERI (hardware) overhead:      %+5.1f%%"
          % (100 * (purecap.cycles / baseline.cycles - 1)))
    print("bounds-check (software) overhead: %+5.1f%%"
          % (100 * (checked.cycles / baseline.cycles - 1)))
    print("\nSame results, full spatial memory safety under purecap - and")
    print("the kernel source never changed.")


if __name__ == "__main__":
    main()
