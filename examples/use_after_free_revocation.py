"""Temporal safety: quarantine, revocation sweep, and use-after-free.

The paper's CHERI foundation supports temporal memory safety (section
2.4): tags make every stored pointer findable, so freeing memory can be
followed by a Cornucopia-style *revocation sweep* that kills every
capability still referring to the freed region.  A dangling use then
traps exactly like a spatial violation.

Run:  python examples/use_after_free_revocation.py
"""

from repro.nocl import NoCLRuntime, i32, kernel, ptr
from repro.simt.config import ARG_BASE


@kernel
def reader(buf: ptr[i32], out: ptr[i32]):
    if threadIdx.x == 0 and blockIdx.x == 0:
        out[0] = buf[0]


def main():
    rt = NoCLRuntime("purecap")
    buf = rt.alloc(i32, 64)
    out = rt.alloc(i32, 1)
    rt.upload(buf, [1234] * 64)

    rt.launch(reader, 1, rt.config.num_lanes, [buf, out])
    print("first use (before free): read %d - fine" % rt.download(out)[0])

    # Free the buffer.  The memory is quarantined, not reused: capabilities
    # to it still exist (e.g. in the kernel argument block from the launch
    # above).
    rt.free(buf)
    slot = next(s for s in rt.compiled(reader).arg_slots
                if s.name == "buf")
    _, tag_before = rt.sm.memory.read_cap_raw(ARG_BASE + slot.offset)
    print("after free, before revocation: stored capability tag = %s"
          % tag_before)

    revoked = rt.revoke()
    _, tag_after = rt.sm.memory.read_cap_raw(ARG_BASE + slot.offset)
    print("revocation sweep killed %d capabilit%s; stored tag now = %s"
          % (revoked, "y" if revoked == 1 else "ies", tag_after))

    print()
    print("Any dangling use of that capability now traps as a tag")
    print("violation - deterministic use-after-free protection, built on")
    print("the same tags that give spatial safety.")


if __name__ == "__main__":
    main()
