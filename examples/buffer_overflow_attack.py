"""The paper's Figure 1: a buffer overread leaking an adjacent secret.

A kernel reads one element past its buffer.  On the unprotected baseline
GPU the read silently returns whatever lives next in memory — here, a
"secret" the kernel was never given.  Recompiled for CHERI, the very same
kernel traps deterministically with a bounds violation; the compromised
read never happens.

Run:  python examples/buffer_overflow_attack.py
"""

from repro.nocl import NoCLRuntime, i32, kernel, ptr
from repro.simt import KernelAbort


@kernel
def overread(data: ptr[i32], leak: ptr[i32], n: i32):
    # ptr points at `data`, but is indexed out of bounds (Figure 1).
    if threadIdx.x == 0 and blockIdx.x == 0:
        leak[0] = data[n]


def attack(mode):
    rt = NoCLRuntime(mode)
    data = rt.alloc(i32, 4)          # the victim buffer (16 bytes)
    secret = rt.alloc(i32, 4)        # adjacent allocation holding a secret
    leak = rt.alloc(i32, 1)
    rt.upload(data, [0xDA1A] * 4)
    rt.upload(secret, [0xC0DE] * 4)
    try:
        rt.launch(overread, 1, rt.config.num_lanes, [data, leak, 4])
    except KernelAbort as abort:
        return "TRAPPED: %s" % abort.cause
    return "leaked value: 0x%X" % (rt.download(leak)[0] & 0xFFFFFFFF)


def main():
    print("Reading data[4] of a 4-element buffer (the secret lives next "
          "door):\n")
    print("  baseline:  %s" % attack("baseline"))
    print("  purecap:   %s" % attack("purecap"))
    print()
    print("The baseline GPU happily reads across the allocation boundary.")
    print("Under CHERI the pointer *is* its bounds: the access faults "
          "before any data moves.")


if __name__ == "__main__":
    main()
