"""Sweep the vector-register-file size (the paper's Table 2 experiment).

SIMTight's compressed register file stores uniform/affine vectors in a
small scalar file and only general vectors in a size-constrained VRF.
Shrinking the VRF saves storage until the working set no longer fits and
dynamic spilling to DRAM kicks in.  This example sweeps the VRF fraction
on one benchmark and prints the storage/cycles/traffic trade-off.

Run:  python examples/register_file_sweep.py
"""

from repro.area.model import paper_geometry, storage_bits
from repro.benchsuite import ALL_BENCHMARKS
from repro.nocl import NoCLRuntime
from repro.simt import SMConfig


def main():
    bench = ALL_BENCHMARKS["MatMul"]
    print("MatMul under shrinking VRF sizes (baseline configuration):\n")
    print("%-10s %12s %10s %10s %12s %8s" % (
        "VRF", "storage(Kb)", "cycles", "spills", "spill bytes", "IPC"))
    reference = None
    for fraction in (1.0, 0.5, 0.375, 0.25, 0.125):
        cfg = SMConfig.baseline(num_warps=8, num_lanes=8,
                                vrf_fraction=fraction)
        rt = NoCLRuntime("baseline", config=cfg)
        stats = bench.run(rt)
        paper_cfg = paper_geometry(SMConfig.baseline).with_(
            vrf_fraction=fraction)
        bits = storage_bits(paper_cfg)
        storage_kb = (bits["gp_vrf"] + bits["gp_srf"]) // 1024
        if reference is None:
            reference = stats.cycles
        print("%-10s %12d %10d %10d %12d %7.2f   (%+.1f%% cycles)" % (
            "%g" % fraction, storage_kb, stats.cycles, stats.gp_spills,
            stats.dram_spill_bytes, stats.ipc,
            100 * (stats.cycles / reference - 1)))
    print("\nStorage shrinks linearly with the VRF; the cliff appears when")
    print("the benchmark's uncompressible vectors exceed the VRF and spill")
    print("traffic floods DRAM - exactly Table 2's shape.")


if __name__ == "__main__":
    main()
