"""The paper's Figure 3 workload: a 256-bin histogram in shared memory.

Demonstrates CUDA-style shared local memory, barriers, and atomics in the
kernel DSL, then inspects what CHERI actually executed: which capability
instructions ran, how compressible the capability metadata was, and how
many registers ever held capabilities.

Run:  python examples/histogram_shared_memory.py
"""

import random

from repro.isa.instructions import CHERI_OPS
from repro.nocl import NoCLRuntime, i32, kernel, ptr, u8


@kernel
def histogram(n: i32, data: ptr[u8], out: ptr[i32]):
    bins = shared(i32, 256)
    i = threadIdx.x
    while i < 256:
        bins[i] = 0
        i += blockDim.x
    syncthreads()
    i = threadIdx.x
    while i < n:
        atomic_add(bins, data[i], 1)
        i += blockDim.x
    syncthreads()
    i = threadIdx.x
    while i < 256:
        out[i] = bins[i]
        i += blockDim.x


def main():
    rt = NoCLRuntime("purecap")
    rng = random.Random(7)
    n = 4096
    values = [rng.randrange(256) for _ in range(n)]
    data = rt.alloc(u8, n)
    out = rt.alloc(i32, 256)
    rt.upload(data, values)

    block = rt.config.num_threads  # one block occupying the SM (Figure 3)
    stats = rt.launch(histogram, 1, block, [n, data, out])

    expect = [0] * 256
    for v in values:
        expect[v] += 1
    assert rt.download(out) == expect, "histogram mismatch"
    print("histogram of %d bytes verified against the host reference\n"
          % n)

    print("cycles=%d  instrs=%d  IPC=%.2f  scratchpad accesses=%d"
          % (stats.cycles, stats.instrs_issued, stats.ipc,
             stats.scratchpad_accesses))
    print("\nCHERI instruction mix (share of all executed instructions):")
    total = sum(stats.opcode_counts.values())
    for op, count in stats.opcode_counts.most_common():
        if op in CHERI_OPS:
            print("  %-16s %6.2f%%" % (op.name, 100 * count / total))
    print("\nregisters per thread that ever held a capability: %d of 32"
          % stats.cap_regs_per_thread)
    print("capability metadata vectors spilled to the VRF: %d"
          % stats.meta_spills)
    print("(uniform bounds across the warp compress to almost nothing - "
          "the paper's key observation)")


if __name__ == "__main__":
    main()
