"""Peek inside the compiler: the same kernel in all three modes.

Prints the generated RISC-V(-CHERI) assembly for a small kernel compiled
as unprotected baseline, pure-capability CHERI, and software-bounds-check
code — the clearest way to see what each protection scheme actually costs
per memory access.

Run:  python examples/inspect_compiler.py
"""

from repro.isa.instructions import CHERI_OPS
from repro.nocl import compile_kernel, i32, kernel, ptr


@kernel
def scale(n: i32, src: ptr[i32], dst: ptr[i32]):
    i = threadIdx.x + blockIdx.x * blockDim.x
    if i < n:
        dst[i] = src[i] * 3


def main():
    for mode in ("baseline", "purecap", "boundscheck"):
        compiled = compile_kernel(scale, mode)
        cheri = sum(1 for instr in compiled.instrs if instr.op in CHERI_OPS)
        print("=" * 72)
        print("mode=%s   %d instructions (%d CHERI), %d-byte arg block"
              % (mode, len(compiled.instrs), cheri,
                 compiled.arg_block_bytes))
        print("=" * 72)
        print(compiled.listing())
        print()
    print("Things to notice:")
    print(" * purecap swaps lw/sw for clw/csw and add for cincoffset -")
    print("   same instruction count, hardware-checked bounds for free.")
    print(" * boundscheck inserts a bltu+trap pair before each access -")
    print("   the Rust-style cost the paper measures at 34%.")
    print(" * pointer arguments load via clc (a 2-flit capability load)")
    print("   in purecap, and as address+length word pairs in boundscheck.")


if __name__ == "__main__":
    main()
